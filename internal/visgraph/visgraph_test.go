package visgraph

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func rectObstacle(id int64, r geom.Rect) Obstacle {
	return Obstacle{ID: id, Poly: geom.RectPolygon(r)}
}

// disjointRects generates n pairwise-disjoint rectangles in [0,size]^2.
func disjointRects(rng *rand.Rand, n int, size float64) []geom.Rect {
	var out []geom.Rect
	for attempts := 0; len(out) < n && attempts < n*200; attempts++ {
		x, y := rng.Float64()*size, rng.Float64()*size
		w, h := rng.Float64()*size/8+1, rng.Float64()*size/8+1
		r := geom.R(x, y, x+w, y+h)
		ok := true
		for _, o := range out {
			if o.Expand(geom.Eps * 10).Intersects(r) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, r)
		}
	}
	return out
}

// freePoint samples a point not strictly inside any rectangle.
func freePoint(rng *rand.Rand, rects []geom.Rect, size float64) geom.Point {
	for {
		p := geom.Pt(rng.Float64()*size, rng.Float64()*size)
		inside := false
		for _, r := range rects {
			if r.ContainsStrict(p) {
				inside = true
				break
			}
		}
		if !inside {
			return p
		}
	}
}

func buildWith(useSweep bool, rects []geom.Rect) *Graph {
	obs := make([]Obstacle, len(rects))
	for i, r := range rects {
		obs[i] = rectObstacle(int64(i), r)
	}
	return Build(Options{UseSweep: useSweep}, obs)
}

func TestNoObstaclesDirectDistance(t *testing.T) {
	for _, sweep := range []bool{false, true} {
		g := Build(Options{UseSweep: sweep}, nil)
		a := g.AddTerminal(geom.Pt(0, 0))
		b := g.AddTerminal(geom.Pt(3, 4))
		if d := g.ObstructedDist(a, b); math.Abs(d-5) > 1e-9 {
			t.Errorf("sweep=%v: dist = %v, want 5", sweep, d)
		}
	}
}

func TestSingleRectangleDetour(t *testing.T) {
	// Points on either side of a unit-height wall: shortest path rounds a
	// corner. Wall from (2,0)-(3,10); a=(0,5), b=(5,5).
	// Direct distance 5 is blocked; path over the top corner (2,10),(3,10):
	// dist = |a-(2,10)| + 1 + |(3,10)-b|.
	for _, sweep := range []bool{false, true} {
		g := buildWith(sweep, []geom.Rect{geom.R(2, 0, 3, 10)})
		a := g.AddTerminal(geom.Pt(0, 5))
		b := g.AddTerminal(geom.Pt(5, 5))
		want := geom.Pt(0, 5).Dist(geom.Pt(2, 10)) + 1 + geom.Pt(3, 10).Dist(geom.Pt(5, 5))
		if d := g.ObstructedDist(a, b); math.Abs(d-want) > 1e-9 {
			t.Errorf("sweep=%v: dist = %v, want %v", sweep, d, want)
		}
	}
}

func TestEntityOnObstacleBoundary(t *testing.T) {
	// Entities on the boundary of the obstacle itself, as the paper's
	// datasets have. The path between two entities on opposite edges rounds
	// the nearest corner.
	for _, sweep := range []bool{false, true} {
		g := buildWith(sweep, []geom.Rect{geom.R(0, 0, 4, 2)})
		a := g.AddTerminal(geom.Pt(0, 1)) // left edge
		b := g.AddTerminal(geom.Pt(4, 1)) // right edge
		want := 1 + 4 + 1.0               // around (0,0),(4,0) or (0,2),(4,2)
		if d := g.ObstructedDist(a, b); math.Abs(d-want) > 1e-9 {
			t.Errorf("sweep=%v: boundary dist = %v, want %v", sweep, d, want)
		}
	}
}

func TestUnreachableEnclosed(t *testing.T) {
	// Four overlapping walls sealing the origin region. (Overlapping
	// obstacles violate the plane sweep's ordering assumptions, so this
	// scene uses the naive oracle — the mode a caller with overlapping data
	// would pick.)
	walls := []geom.Rect{
		geom.R(-3, -3, 3, -2), // bottom
		geom.R(-3, 2, 3, 3),   // top
		geom.R(-3, -3, -2, 3), // left, overlapping both
		geom.R(2, -3, 3, 3),   // right, overlapping both
	}
	g := buildWith(false, walls)
	in := g.AddTerminal(geom.Pt(0, 0))
	out := g.AddTerminal(geom.Pt(10, 10))
	if d := g.ObstructedDist(in, out); !math.IsInf(d, 1) {
		t.Errorf("enclosed dist = %v, want +Inf", d)
	}
	// Obstructed distance is infinite but the Euclidean one is not: exactly
	// the situation that makes ONN's dEmax bound unusable until some
	// reachable neighbor is found.
}

func TestTouchingWallsLeaveSeam(t *testing.T) {
	// Walls that merely touch (share boundary segments) do NOT seal the
	// region: the obstructed metric forbids crossing interiors, and a path
	// may slide along the shared boundary. This documents the open-interior
	// semantics.
	walls := []geom.Rect{
		geom.R(-3, -3, 3, -2), // bottom
		geom.R(-3, 2, 3, 3),   // top
		geom.R(-3, -2, -2, 2), // left, touching both
		geom.R(2, -2, 3, 2),   // right, touching both
	}
	g := buildWith(false, walls)
	in := g.AddTerminal(geom.Pt(0, 0))
	out := g.AddTerminal(geom.Pt(10, 10))
	if d := g.ObstructedDist(in, out); math.IsInf(d, 1) {
		t.Error("touching walls should leave a seam path")
	}
}

func TestConcaveObstacle(t *testing.T) {
	// U-shaped obstacle opening upward; path from inside the cavity to below
	// must climb out and around.
	u := geom.MustPolygon([]geom.Point{
		{X: 0, Y: 0}, {X: 6, Y: 0}, {X: 6, Y: 6}, {X: 4, Y: 6},
		{X: 4, Y: 2}, {X: 2, Y: 2}, {X: 2, Y: 6}, {X: 0, Y: 6},
	})
	for _, sweep := range []bool{false, true} {
		g := Build(Options{UseSweep: sweep}, []Obstacle{{ID: 1, Poly: u}})
		in := g.AddTerminal(geom.Pt(3, 4))   // inside cavity
		out := g.AddTerminal(geom.Pt(3, -2)) // below the U
		d := g.ObstructedDist(in, out)
		// Path must exit over (2,6) or (4,6): length >= 2 (to rim) and the
		// direct distance 6 must be exceeded substantially.
		if d < 10 {
			t.Errorf("sweep=%v: cavity dist = %v, suspiciously short", sweep, d)
		}
		if math.IsInf(d, 1) {
			t.Errorf("sweep=%v: cavity should be reachable", sweep)
		}
	}
}

func TestEuclideanLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	rects := disjointRects(rng, 12, 100)
	for _, sweep := range []bool{false, true} {
		g := buildWith(sweep, rects)
		for i := 0; i < 20; i++ {
			a := freePoint(rng, rects, 100)
			b := freePoint(rng, rects, 100)
			na := g.AddTerminal(a)
			nb := g.AddTerminal(b)
			if d := g.ObstructedDist(na, nb); d < a.Dist(b)-1e-9 {
				t.Fatalf("sweep=%v: dO(%v,%v)=%v < dE=%v", sweep, a, b, d, a.Dist(b))
			}
			g.DeleteEntity(na)
			g.DeleteEntity(nb)
		}
	}
}

// TestSweepMatchesNaiveDistances is the core property test: on random
// scenes, the sweep-built and naive-built graphs must induce identical
// shortest-path distances (edge sets may differ on zero-length grazes).
func TestSweepMatchesNaiveDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for scene := 0; scene < 40; scene++ {
		rects := disjointRects(rng, 3+rng.Intn(10), 100)
		gn := buildWith(false, rects)
		gs := buildWith(true, rects)
		var pts []geom.Point
		for i := 0; i < 6; i++ {
			pts = append(pts, freePoint(rng, rects, 100))
		}
		var nn, ns []NodeID
		for _, p := range pts {
			nn = append(nn, gn.AddTerminal(p))
			ns = append(ns, gs.AddTerminal(p))
		}
		for i := 0; i < len(pts); i++ {
			for j := i + 1; j < len(pts); j++ {
				dn := gn.ObstructedDist(nn[i], nn[j])
				ds := gs.ObstructedDist(ns[i], ns[j])
				if math.Abs(dn-ds) > 1e-6 && !(math.IsInf(dn, 1) && math.IsInf(ds, 1)) {
					t.Fatalf("scene %d: dist(%v,%v) naive=%v sweep=%v",
						scene, pts[i], pts[j], dn, ds)
				}
			}
		}
	}
}

// TestSweepEdgesAreTrulyVisible ensures the sweep never reports a blocked
// pair as visible (no false positives), validated by the naive oracle.
func TestSweepEdgesAreTrulyVisible(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for scene := 0; scene < 30; scene++ {
		rects := disjointRects(rng, 3+rng.Intn(8), 100)
		g := buildWith(true, rects)
		for i := 0; i < 4; i++ {
			g.AddTerminal(freePoint(rng, rects, 100))
		}
		for u := range g.nodes {
			if !g.nodes[u].alive {
				continue
			}
			for _, he := range g.nodes[u].adj {
				if NodeID(u) > he.To {
					continue
				}
				if !g.Visible(g.nodes[u].pt, g.nodes[he.To].pt) {
					t.Fatalf("scene %d: sweep edge %v-%v crosses an obstacle",
						scene, g.nodes[u].pt, g.nodes[he.To].pt)
				}
			}
		}
	}
}

// TestSweepWithBoundaryEntities stresses the axis-aligned collinear cases:
// entities placed exactly on rectangle edges (as the paper's generator
// does), where sweep rays pass collinearly through corners.
func TestSweepWithBoundaryEntities(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for scene := 0; scene < 30; scene++ {
		rects := disjointRects(rng, 2+rng.Intn(8), 100)
		gn := buildWith(false, rects)
		gs := buildWith(true, rects)
		var pts []geom.Point
		for _, r := range rects[:2] {
			// One point on each of two edges of the rectangle.
			pts = append(pts,
				geom.Pt(r.MinX, r.MinY+rng.Float64()*(r.MaxY-r.MinY)),
				geom.Pt(r.MinX+rng.Float64()*(r.MaxX-r.MinX), r.MaxY))
		}
		var nn, ns []NodeID
		for _, p := range pts {
			nn = append(nn, gn.AddTerminal(p))
			ns = append(ns, gs.AddTerminal(p))
		}
		for i := 0; i < len(pts); i++ {
			for j := i + 1; j < len(pts); j++ {
				dn := gn.ObstructedDist(nn[i], nn[j])
				ds := gs.ObstructedDist(ns[i], ns[j])
				if math.Abs(dn-ds) > 1e-6 {
					t.Fatalf("scene %d: boundary dist %d-%d naive=%v sweep=%v",
						scene, i, j, dn, ds)
				}
			}
		}
	}
}

func TestAddObstacleUpdatesDistances(t *testing.T) {
	for _, sweep := range []bool{false, true} {
		// Start with an empty graph, then grow it; after each addition the
		// distance must equal a fresh batch-built graph's distance.
		rng := rand.New(rand.NewSource(25))
		rects := disjointRects(rng, 8, 100)
		a := freePoint(rng, rects, 100)
		b := freePoint(rng, rects, 100)

		g := Build(Options{UseSweep: sweep}, nil)
		na := g.AddTerminal(a)
		nb := g.AddTerminal(b)
		for i, r := range rects {
			if !g.AddObstacle(int64(i), geom.RectPolygon(r)) {
				t.Fatalf("AddObstacle(%d) reported duplicate", i)
			}
			fresh := buildWith(sweep, rects[:i+1])
			fa := fresh.AddTerminal(a)
			fb := fresh.AddTerminal(b)
			dg := g.ObstructedDist(na, nb)
			df := fresh.ObstructedDist(fa, fb)
			if math.Abs(dg-df) > 1e-6 && !(math.IsInf(dg, 1) && math.IsInf(df, 1)) {
				t.Fatalf("sweep=%v: after obstacle %d: incremental=%v fresh=%v", sweep, i, dg, df)
			}
		}
		// Duplicate addition is a no-op.
		if g.AddObstacle(0, geom.RectPolygon(rects[0])) {
			t.Error("duplicate obstacle accepted")
		}
		if !g.HasObstacle(0) || g.HasObstacle(999) {
			t.Error("HasObstacle wrong")
		}
	}
}

func TestDeleteEntityRestoresGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	rects := disjointRects(rng, 6, 100)
	g := buildWith(true, rects)
	nodesBefore := g.NumNodes()
	edgesBefore := g.NumEdges()
	for i := 0; i < 10; i++ {
		p := freePoint(rng, rects, 100)
		id := g.AddEntity(p)
		g.DeleteEntity(id)
		if g.NumNodes() != nodesBefore || g.NumEdges() != edgesBefore {
			t.Fatalf("iter %d: nodes %d->%d edges %d->%d", i,
				nodesBefore, g.NumNodes(), edgesBefore, g.NumEdges())
		}
	}
	// Deleting a vertex node is refused.
	g.DeleteEntity(NodeID(0))
	if g.NumNodes() != nodesBefore {
		t.Error("vertex node deleted")
	}
}

func TestEntityEntityEdgesSkipped(t *testing.T) {
	g := buildWith(true, []geom.Rect{geom.R(10, 10, 12, 12)})
	e1 := g.AddEntity(geom.Pt(0, 0))
	e2 := g.AddEntity(geom.Pt(1, 1))
	for _, he := range g.Neighbors(e1) {
		if he.To == e2 {
			t.Error("entity-entity edge created")
		}
	}
	// Terminals do connect to entities.
	q := g.AddTerminal(geom.Pt(0, 1))
	found := false
	for _, he := range g.Neighbors(q) {
		if he.To == e1 || he.To == e2 {
			found = true
		}
	}
	if !found {
		t.Error("terminal not connected to entities")
	}
}

func TestShortestPathConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	rects := disjointRects(rng, 10, 100)
	g := buildWith(true, rects)
	for i := 0; i < 15; i++ {
		a := g.AddTerminal(freePoint(rng, rects, 100))
		b := g.AddTerminal(freePoint(rng, rects, 100))
		path, d := g.ShortestPath(a, b)
		if math.IsInf(d, 1) {
			if path != nil {
				t.Fatal("unreachable but path non-nil")
			}
			continue
		}
		if path[0] != a || path[len(path)-1] != b {
			t.Fatal("path endpoints wrong")
		}
		sum := 0.0
		for j := 1; j < len(path); j++ {
			pa, pb := g.Point(path[j-1]), g.Point(path[j])
			if !g.Visible(pa, pb) {
				t.Fatalf("path segment %v-%v blocked", pa, pb)
			}
			sum += pa.Dist(pb)
		}
		if math.Abs(sum-d) > 1e-9 {
			t.Fatalf("path length %v != dist %v", sum, d)
		}
		if d2 := g.ObstructedDist(a, b); math.Abs(d-d2) > 1e-9 {
			t.Fatalf("ShortestPath dist %v != ObstructedDist %v", d, d2)
		}
		g.DeleteEntity(a)
		g.DeleteEntity(b)
	}
}

func TestExpandOrderAndBound(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	rects := disjointRects(rng, 8, 100)
	g := buildWith(true, rects)
	src := g.AddTerminal(freePoint(rng, rects, 100))
	prev := -1.0
	var dists []float64
	g.Expand(src, 60, func(n NodeID, d float64) bool {
		if d < prev {
			t.Fatalf("Expand out of order: %v after %v", d, prev)
		}
		if d > 60+1e-9 {
			t.Fatalf("Expand exceeded bound: %v", d)
		}
		prev = d
		dists = append(dists, d)
		return true
	})
	if len(dists) == 0 {
		t.Fatal("Expand visited nothing")
	}
	// Early stop.
	count := 0
	g.Expand(src, math.Inf(1), func(NodeID, float64) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop at %d", count)
	}
}

func TestSelfDistanceZero(t *testing.T) {
	g := buildWith(true, []geom.Rect{geom.R(0, 0, 1, 1)})
	a := g.AddTerminal(geom.Pt(5, 5))
	if d := g.ObstructedDist(a, a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	path, d := g.ShortestPath(a, a)
	if d != 0 || len(path) != 1 {
		t.Errorf("self path = %v, %v", path, d)
	}
}

func TestCoincidentPoints(t *testing.T) {
	for _, sweep := range []bool{false, true} {
		g := buildWith(sweep, []geom.Rect{geom.R(10, 10, 12, 12)})
		p := geom.Pt(3, 3)
		a := g.AddTerminal(p)
		b := g.AddTerminal(p)
		if d := g.ObstructedDist(a, b); d > 1e-9 {
			t.Errorf("sweep=%v: coincident terminals dist = %v", sweep, d)
		}
	}
}

func TestEntityAtObstacleCorner(t *testing.T) {
	for _, sweep := range []bool{false, true} {
		g := buildWith(sweep, []geom.Rect{geom.R(2, 2, 4, 4)})
		a := g.AddTerminal(geom.Pt(2, 2)) // exactly at a corner
		b := g.AddTerminal(geom.Pt(0, 0))
		want := geom.Pt(2, 2).Dist(geom.Pt(0, 0))
		if d := g.ObstructedDist(a, b); math.Abs(d-want) > 1e-9 {
			t.Errorf("sweep=%v: corner entity dist = %v, want %v", sweep, d, want)
		}
	}
}
