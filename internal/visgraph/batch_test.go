package visgraph

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// TestAddObstaclesBatchMatchesSequential: folding a batch of obstacles into
// a graph must produce the same distances as adding them one by one and the
// same as a fresh batch build.
func TestAddObstaclesBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 10; trial++ {
		rects := disjointRects(rng, 10, 100)
		split := 4
		mk := func() (*Graph, []Obstacle, []Obstacle) {
			var first, second []Obstacle
			for i, r := range rects {
				ob := rectObstacle(int64(i), r)
				if i < split {
					first = append(first, ob)
				} else {
					second = append(second, ob)
				}
			}
			return Build(Options{UseSweep: true}, first), first, second
		}
		a := freePoint(rng, rects, 100)
		b := freePoint(rng, rects, 100)

		gBatch, _, second := mk()
		na := gBatch.AddTerminal(a)
		nb := gBatch.AddTerminal(b)
		if got := gBatch.AddObstacles(second); got != len(second) {
			t.Fatalf("AddObstacles added %d, want %d", got, len(second))
		}
		dBatch := gBatch.ObstructedDist(na, nb)

		gSeq, _, second2 := mk()
		na2 := gSeq.AddTerminal(a)
		nb2 := gSeq.AddTerminal(b)
		for _, ob := range second2 {
			if !gSeq.AddObstacle(ob.ID, ob.Poly) {
				t.Fatal("sequential AddObstacle rejected fresh obstacle")
			}
		}
		dSeq := gSeq.ObstructedDist(na2, nb2)

		gFresh := buildWith(true, rects)
		dFresh := gFresh.ObstructedDist(gFresh.AddTerminal(a), gFresh.AddTerminal(b))

		if !distEq(dBatch, dSeq) || !distEq(dBatch, dFresh) {
			t.Fatalf("trial %d: batch=%v seq=%v fresh=%v", trial, dBatch, dSeq, dFresh)
		}
		// Duplicate batch entries are ignored.
		if got := gBatch.AddObstacles(second); got != 0 {
			t.Fatalf("re-adding batch added %d", got)
		}
	}
}

func distEq(a, b float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	return math.Abs(a-b) <= 1e-6
}

// TestSweepOnStreetMapWorld runs the sweep-vs-naive distance property on the
// actual evaluation generator output: thin axis-aligned street segments with
// boundary entities, the configuration the experiments use.
func TestSweepOnStreetMapWorld(t *testing.T) {
	world := dataset.Generate(dataset.DefaultConfig(77, 120))
	obs := make([]Obstacle, len(world.Polys))
	for i, pg := range world.Polys {
		obs[i] = Obstacle{ID: int64(i), Poly: pg}
	}
	gn := Build(Options{UseSweep: false}, obs)
	gs := Build(Options{UseSweep: true}, obs)
	rng := world.EntityRand(1)
	pts := world.Entities(rng, 12)
	var nn, ns []NodeID
	for _, p := range pts {
		nn = append(nn, gn.AddTerminal(p))
		ns = append(ns, gs.AddTerminal(p))
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			dn := gn.ObstructedDist(nn[i], nn[j])
			ds := gs.ObstructedDist(ns[i], ns[j])
			if !distEq(dn, ds) {
				t.Fatalf("street world dist %d-%d: naive=%v sweep=%v (%v %v)",
					i, j, dn, ds, pts[i], pts[j])
			}
			// Lower bound holds too.
			if ds < pts[i].Dist(pts[j])-1e-9 {
				t.Fatalf("dO < dE for %v-%v", pts[i], pts[j])
			}
		}
	}
}

// TestGraphCountersConsistent: node/edge counters must survive a workout of
// additions and deletions.
func TestGraphCountersConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	rects := disjointRects(rng, 8, 100)
	g := buildWith(true, rects)
	baseNodes, baseEdges := g.NumNodes(), g.NumEdges()
	if baseNodes != 4*len(rects) {
		t.Fatalf("vertex nodes = %d, want %d", baseNodes, 4*len(rects))
	}
	var ids []NodeID
	for i := 0; i < 20; i++ {
		ids = append(ids, g.AddEntity(freePoint(rng, rects, 100)))
	}
	for _, id := range ids {
		g.DeleteEntity(id)
	}
	if g.NumNodes() != baseNodes || g.NumEdges() != baseEdges {
		t.Fatalf("counters drifted: nodes %d->%d edges %d->%d",
			baseNodes, g.NumNodes(), baseEdges, g.NumEdges())
	}
	// Adjacency symmetry: every half edge has its mirror.
	for u := range g.nodes {
		if !g.nodes[u].alive {
			continue
		}
		for _, he := range g.nodes[u].adj {
			found := false
			for _, back := range g.nodes[he.To].adj {
				if back.To == NodeID(u) {
					if math.Abs(back.Weight-he.Weight) > 1e-12 {
						t.Fatalf("asymmetric weight %v vs %v", back.Weight, he.Weight)
					}
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("missing mirror edge %d->%d", u, he.To)
			}
		}
	}
}

// TestNodeSlotReuse: deleted entity slots are recycled without disturbing
// obstacle vertices.
func TestNodeSlotReuse(t *testing.T) {
	g := buildWith(true, []geom.Rect{geom.R(10, 10, 20, 20)})
	a := g.AddEntity(geom.Pt(0, 0))
	g.DeleteEntity(a)
	b := g.AddEntity(geom.Pt(5, 5))
	if a != b {
		t.Errorf("slot not reused: %d then %d", a, b)
	}
	if g.Point(b) != geom.Pt(5, 5) {
		t.Errorf("reused slot has stale point %v", g.Point(b))
	}
}
