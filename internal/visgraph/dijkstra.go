package visgraph

import (
	"container/heap"
	"math"
)

// pqItem is a priority-queue element for Dijkstra's algorithm [D59].
type pqItem struct {
	node NodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// interruptEvery is how many settled nodes pass between Interrupt polls: a
// large enough stride that polling is free, small enough that cancellation
// lands within microseconds on real graphs.
const interruptEvery = 64

// Expand runs Dijkstra's algorithm from source, visiting settled nodes in
// ascending distance order while the distance does not exceed bound. The
// visit callback returns false to stop the expansion. This is the traversal
// the OR algorithm uses to refine all candidates with a single expansion
// around the query point (Fig 5 of the paper); duplicates in the queue are
// skipped on dequeue, exactly as described there. When Options.Interrupt
// fires, the expansion aborts mid-flight; the caller is responsible for
// noticing (sessions check their context after every expansion).
func (g *Graph) Expand(source NodeID, bound float64, visit func(n NodeID, dist float64) bool) {
	if g.opts.Metrics != nil {
		g.opts.Metrics.Expansions++
	}
	settled := make([]bool, len(g.nodes))
	best := make([]float64, len(g.nodes))
	for i := range best {
		best[i] = math.Inf(1)
	}
	best[source] = 0
	sinceCheck := 0
	q := pq{{node: source, dist: 0}}
	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		if settled[it.node] {
			continue
		}
		settled[it.node] = true
		if g.opts.Metrics != nil {
			g.opts.Metrics.SettledNodes++
		}
		if sinceCheck++; sinceCheck >= interruptEvery {
			sinceCheck = 0
			if g.opts.Interrupt != nil && g.opts.Interrupt() {
				return
			}
		}
		if !visit(it.node, it.dist) {
			return
		}
		for _, he := range g.nodes[it.node].adj {
			if settled[he.To] {
				continue
			}
			d := it.dist + he.Weight
			if d <= bound && d < best[he.To] {
				best[he.To] = d
				heap.Push(&q, pqItem{node: he.To, dist: d})
			}
		}
	}
}

// ShortestPath returns a shortest node sequence from source to target and
// its length; the path is nil and the length +Inf when target is
// unreachable.
func (g *Graph) ShortestPath(source, target NodeID) ([]NodeID, float64) {
	if source == target {
		return []NodeID{source}, 0
	}
	if g.opts.Metrics != nil {
		g.opts.Metrics.Expansions++
	}
	parent := make(map[NodeID]NodeID, len(g.nodes))
	settled := make(map[NodeID]bool, len(g.nodes))
	dist := make(map[NodeID]float64, len(g.nodes))
	sinceCheck := 0
	q := pq{{node: source, dist: 0}}
	parent[source] = Invalid
	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		if settled[it.node] {
			continue
		}
		settled[it.node] = true
		if g.opts.Metrics != nil {
			g.opts.Metrics.SettledNodes++
		}
		if sinceCheck++; sinceCheck >= interruptEvery {
			sinceCheck = 0
			if g.opts.Interrupt != nil && g.opts.Interrupt() {
				return nil, math.Inf(1)
			}
		}
		if it.node == target {
			var path []NodeID
			for n := target; n != Invalid; n = parent[n] {
				path = append(path, n)
			}
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			return path, it.dist
		}
		for _, he := range g.nodes[it.node].adj {
			if settled[he.To] {
				continue
			}
			d := it.dist + he.Weight
			if old, ok := dist[he.To]; !ok || d < old {
				dist[he.To] = d
				parent[he.To] = it.node
				heap.Push(&q, pqItem{node: he.To, dist: d})
			}
		}
	}
	return nil, math.Inf(1)
}
