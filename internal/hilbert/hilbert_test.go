package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeOrder1(t *testing.T) {
	// The order-1 curve visits (0,0),(0,1),(1,1),(1,0).
	want := map[[2]uint32]uint64{
		{0, 0}: 0, {0, 1}: 1, {1, 1}: 2, {1, 0}: 3,
	}
	for xy, d := range want {
		if got := Encode(1, xy[0], xy[1]); got != d {
			t.Errorf("Encode(1,%d,%d) = %d, want %d", xy[0], xy[1], got, d)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for order := uint(1); order <= 8; order++ {
		n := uint32(1) << order
		for d := uint64(0); d < uint64(n)*uint64(n); d++ {
			x, y := Decode(order, d)
			if x >= n || y >= n {
				t.Fatalf("order %d: Decode(%d) out of range (%d,%d)", order, d, x, y)
			}
			if got := Encode(order, x, y); got != d {
				t.Fatalf("order %d: Encode(Decode(%d)) = %d", order, d, got)
			}
		}
	}
}

func TestCurveIsContinuous(t *testing.T) {
	// Consecutive curve positions must be 4-neighbours on the grid.
	const order = 6
	n := uint64(1) << order
	px, py := Decode(order, 0)
	for d := uint64(1); d < n*n; d++ {
		x, y := Decode(order, d)
		dx := int(x) - int(px)
		dy := int(y) - int(py)
		if dx*dx+dy*dy != 1 {
			t.Fatalf("discontinuity at d=%d: (%d,%d)->(%d,%d)", d, px, py, x, y)
		}
		px, py = x, y
	}
}

func TestEncodeBijective(t *testing.T) {
	const order = 5
	n := uint32(1) << order
	seen := make(map[uint64]bool, n*n)
	for x := uint32(0); x < n; x++ {
		for y := uint32(0); y < n; y++ {
			d := Encode(order, x, y)
			if d >= uint64(n)*uint64(n) {
				t.Fatalf("Encode(%d,%d) = %d out of range", x, y, d)
			}
			if seen[d] {
				t.Fatalf("duplicate curve position %d", d)
			}
			seen[d] = true
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(3))}
	prop := func(x, y uint32) bool {
		const order = 16
		x %= 1 << order
		y %= 1 << order
		gx, gy := Decode(order, Encode(order, x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestEncodePointClamping(t *testing.T) {
	inside := EncodePoint(5, 5, 0, 0, 10, 10)
	low := EncodePoint(-100, -100, 0, 0, 10, 10)
	high := EncodePoint(100, 100, 0, 0, 10, 10)
	if low != EncodePoint(0, 0, 0, 0, 10, 10) {
		t.Error("low clamp wrong")
	}
	if high != EncodePoint(10, 10, 0, 0, 10, 10) {
		t.Error("high clamp wrong")
	}
	_ = inside
	if EncodePoint(3, 3, 0, 0, 0, 0) != 0 {
		t.Error("degenerate box should map to 0")
	}
}

func TestEncodePointLocality(t *testing.T) {
	// Nearby points should mostly have nearby Hilbert values; specifically,
	// a pair of adjacent cells differs by exactly 1 along the curve when the
	// cells are curve-consecutive. We check a weaker property exhaustively:
	// Hilbert value changes when the cell changes.
	a := EncodePoint(1, 1, 0, 0, 1024, 1024)
	b := EncodePoint(900, 900, 0, 0, 1024, 1024)
	if a == b {
		t.Error("distant points mapped to equal values")
	}
}
