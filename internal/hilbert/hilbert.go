// Package hilbert implements the 2-D Hilbert space-filling curve. The ODJ
// algorithm (Fig 10 of the paper) sorts join seeds by Hilbert order to
// maximize buffer locality between consecutive obstacle-R-tree probes, and
// the R-tree offers a Hilbert-sorted bulk load.
package hilbert

// Encode maps grid cell (x, y) on a 2^order x 2^order grid to its distance
// along the Hilbert curve. x and y must be < 2^order; order must be <= 31.
func Encode(order uint, x, y uint32) uint64 {
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		x, y = rot(s, x, y, rx, ry)
	}
	return d
}

// Decode is the inverse of Encode: it maps a curve distance back to the grid
// cell (x, y).
func Decode(order uint, d uint64) (x, y uint32) {
	t := d
	for s := uint64(1); s < 1<<order; s <<= 1 {
		rx := uint32(1) & uint32(t/2)
		ry := uint32(1) & uint32(t^uint64(rx))
		x, y = rot(uint32(s), x, y, rx, ry)
		x += uint32(s) * rx
		y += uint32(s) * ry
		t /= 4
	}
	return x, y
}

// rot rotates/flips the quadrant per the Hilbert curve recursion.
func rot(s, x, y, rx, ry uint32) (nx, ny uint32) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// DefaultOrder is the grid resolution used when mapping float coordinates:
// 2^16 cells per axis is finer than any dataset in the experiments.
const DefaultOrder = 16

// EncodePoint maps a point in [minX,maxX] x [minY,maxY] to its Hilbert value
// on the DefaultOrder grid. Points outside the box are clamped.
func EncodePoint(x, y, minX, minY, maxX, maxY float64) uint64 {
	n := uint32(1)<<DefaultOrder - 1
	gx := scale(x, minX, maxX, n)
	gy := scale(y, minY, maxY, n)
	return Encode(DefaultOrder, gx, gy)
}

func scale(v, lo, hi float64, n uint32) uint32 {
	if hi <= lo {
		return 0
	}
	f := (v - lo) / (hi - lo)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return uint32(f * float64(n))
}
