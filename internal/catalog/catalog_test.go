package catalog

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/pagefile"
)

func TestStateRoundTrip(t *testing.T) {
	in := &State{
		Generation: 42,
		PageFree:   []pagefile.PageID{9, 3, 17},
		Datasets: []DatasetMeta{
			{Name: "P", Tree: TreeMeta{Root: 5, Height: 2, Size: 1000}, IDBound: 1024},
			{Name: "towers", Tree: TreeMeta{Root: 88, Height: 1, Size: 0}, IDBound: 0},
		},
	}
	out, err := DecodeState(EncodeState(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in  %+v\n out %+v", in, out)
	}
	// Empty state round-trips too (a freshly created database).
	empty, err := DecodeState(EncodeState(&State{}))
	if err != nil {
		t.Fatal(err)
	}
	if empty.Generation != 0 || len(empty.PageFree) != 0 || len(empty.Datasets) != 0 {
		t.Fatalf("empty state decoded to %+v", empty)
	}
}

func TestObstaclesRoundTrip(t *testing.T) {
	in := &Obstacles{
		Tree:       TreeMeta{Root: 2, Height: 3, Size: 2},
		IDBound:    7,
		Generation: 5,
		Polys: map[int64][]geom.Point{
			0: {geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)},
			6: {geom.Pt(2, 2), geom.Pt(4, 2), geom.Pt(4, 4), geom.Pt(2, 4)},
		},
	}
	out, err := DecodeObstacles(EncodeObstacles(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in  %+v\n out %+v", in, out)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	state := EncodeState(&State{Generation: 1, Datasets: []DatasetMeta{{Name: "P"}}})
	obst := EncodeObstacles(&Obstacles{
		IDBound: 1,
		Polys:   map[int64][]geom.Point{0: {geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)}},
	})
	cases := []struct {
		name string
		blob []byte
		dec  func([]byte) error
	}{
		{"state truncated", state[:len(state)-3], func(b []byte) error { _, err := DecodeState(b); return err }},
		{"state trailing", append(append([]byte{}, state...), 0), func(b []byte) error { _, err := DecodeState(b); return err }},
		{"state wrong magic", obst, func(b []byte) error { _, err := DecodeState(b); return err }},
		{"obst truncated", obst[:len(obst)-9], func(b []byte) error { _, err := DecodeObstacles(b); return err }},
		{"obst wrong magic", state, func(b []byte) error { _, err := DecodeObstacles(b); return err }},
		{"empty", nil, func(b []byte) error { _, err := DecodeState(b); return err }},
	}
	for _, c := range cases {
		if err := c.dec(c.blob); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", c.name, err)
		}
	}
}

func TestBlobChainRoundTrip(t *testing.T) {
	st := pagefile.NewMemStorage(64) // payload 60 bytes per page
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 59, 60, 61, 300, 4096} {
		data := make([]byte, n)
		rng.Read(data)
		pages := make([]pagefile.PageID, BlobPages(64, n))
		for i := range pages {
			var err error
			if pages[i], err = st.Allocate(); err != nil {
				t.Fatal(err)
			}
		}
		ref, err := WriteBlob(st, pages, data)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ReadBlob(st, ref)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("n=%d: blob mismatch", n)
		}
		chain, err := BlobChain(st, ref)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(chain, pages) {
			t.Fatalf("n=%d: chain %v, wrote %v", n, chain, pages)
		}
		for _, id := range chain {
			if err := st.Free(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st.NumPages() != 0 {
		t.Fatalf("leaked %d pages", st.NumPages())
	}
}

func TestBlobOverAllocatedChain(t *testing.T) {
	// The state-blob sizing loop may over-allocate; extra pages are chained
	// in as padding and must read back and free cleanly.
	st := pagefile.NewMemStorage(64)
	data := []byte("short blob")
	pages := make([]pagefile.PageID, 3)
	for i := range pages {
		pages[i], _ = st.Allocate()
	}
	ref, err := WriteBlob(st, pages, data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadBlob(st, ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("padded blob mismatch")
	}
	chain, err := BlobChain(st, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 {
		t.Fatalf("chain has %d pages, want all 3 (padding pages must stay linked for freeing)", len(chain))
	}
}

func TestReadBlobDetectsDamage(t *testing.T) {
	st := pagefile.NewMemStorage(64)
	data := bytes.Repeat([]byte("x"), 200)
	pages := make([]pagefile.PageID, BlobPages(64, len(data)))
	for i := range pages {
		pages[i], _ = st.Allocate()
	}
	ref, err := WriteBlob(st, pages, data)
	if err != nil {
		t.Fatal(err)
	}
	// Damage a middle page's payload.
	buf := make([]byte, 64)
	if err := st.ReadPage(pages[1], buf); err != nil {
		t.Fatal(err)
	}
	buf[10] ^= 0xff
	if err := st.WritePage(pages[1], buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBlob(st, ref); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("damaged blob read: %v, want ErrCorrupt", err)
	}
}
