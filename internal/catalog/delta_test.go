package catalog

import (
	"errors"
	"reflect"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/pagefile"
)

func TestDeltaRoundTrip(t *testing.T) {
	d := &Delta{
		Generation: 41,
		Next:       907,
		FreeOps: []pagefile.AllocOp{
			{ID: 12},             // free
			{Take: true, ID: 12}, // immediately reused
			{Take: true, ID: 4},
			{ID: 88},
		},
		Datasets: []DatasetMeta{
			{Name: "P", Tree: TreeMeta{Root: 7, Height: 2, Size: 120}, IDBound: 130},
		},
		Obst: &ObstacleDelta{
			Tree:       TreeMeta{Root: 3, Height: 1, Size: 9},
			IDBound:    10,
			Generation: 6,
			Added: []ObstacleAdd{
				{ID: 9, Verts: []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)}},
			},
			Removed: []int64{2},
		},
	}
	back, err := DecodeDelta(EncodeDelta(d))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", d, back)
	}

	// A pure point-commit delta (no obstacle part) round-trips too.
	small := &Delta{Generation: 1, Next: 5, Datasets: d.Datasets}
	back, err = DecodeDelta(EncodeDelta(small))
	if err != nil {
		t.Fatal(err)
	}
	if back.Obst != nil || !reflect.DeepEqual(small, back) {
		t.Fatalf("small delta mismatch: %+v", back)
	}
}

func TestDeltaApply(t *testing.T) {
	st := &State{
		Generation: 10,
		PageFree:   []pagefile.PageID{4, 9},
		Datasets: []DatasetMeta{
			{Name: "P", Tree: TreeMeta{Root: 7, Height: 2, Size: 100}, IDBound: 100},
		},
	}
	ob := &Obstacles{
		Tree:    TreeMeta{Root: 3, Height: 1, Size: 2},
		IDBound: 2,
		Polys: map[int64][]geom.Point{
			0: {geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)},
			1: {geom.Pt(5, 5), geom.Pt(6, 5), geom.Pt(5, 6)},
		},
	}
	d := &Delta{
		Generation: 11,
		Next:       50,
		FreeOps: []pagefile.AllocOp{
			{Take: true, ID: 4},
			{ID: 20},
			{Take: true, ID: 20}, // freed then reused within the commit
		},
		Datasets: []DatasetMeta{
			{Name: "P", Tree: TreeMeta{Root: 8, Height: 2, Size: 101}, IDBound: 101},
			{Name: "Q", Tree: TreeMeta{Root: 30, Height: 1, Size: 5}, IDBound: 5},
		},
		Obst: &ObstacleDelta{
			Tree:       TreeMeta{Root: 3, Height: 1, Size: 2},
			IDBound:    3,
			Generation: 3,
			Added:      []ObstacleAdd{{ID: 2, Verts: []geom.Point{geom.Pt(9, 9), geom.Pt(10, 9), geom.Pt(9, 10)}}},
			Removed:    []int64{0},
		},
	}
	ob2, err := d.Apply(st, ob)
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation != 11 {
		t.Fatalf("generation = %d", st.Generation)
	}
	gotFree := append([]pagefile.PageID(nil), st.PageFree...)
	sort.Slice(gotFree, func(i, j int) bool { return gotFree[i] < gotFree[j] })
	if !reflect.DeepEqual(gotFree, []pagefile.PageID{9}) {
		t.Fatalf("free list = %v, want [9]", gotFree)
	}
	if len(st.Datasets) != 2 || st.Datasets[0].Tree.Root != 8 || st.Datasets[1].Name != "Q" {
		t.Fatalf("datasets = %+v", st.Datasets)
	}
	if len(ob2.Polys) != 2 {
		t.Fatalf("obstacle polys = %v", ob2.Polys)
	}
	if _, live := ob2.Polys[0]; live {
		t.Fatal("removed obstacle 0 still live")
	}
	if _, live := ob2.Polys[2]; !live {
		t.Fatal("added obstacle 2 missing")
	}

	// A delta against a state it does not match is corrupt, not absorbed.
	bad := &Delta{FreeOps: []pagefile.AllocOp{{Take: true, ID: 777}}}
	if _, err := bad.Apply(st, ob2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("taking a non-free page: %v", err)
	}
	badObst := &Delta{Obst: &ObstacleDelta{Removed: []int64{55}}}
	if _, err := badObst.Apply(st, ob2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("removing a dead obstacle: %v", err)
	}

	// The first obstacle-bearing delta over a file with no obstacle blob
	// creates the obstacle state from scratch.
	fresh := &Delta{Obst: &ObstacleDelta{
		IDBound: 1, Generation: 1,
		Added: []ObstacleAdd{{ID: 0, Verts: []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)}}},
	}}
	ob3, err := fresh.Apply(&State{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ob3 == nil || len(ob3.Polys) != 1 {
		t.Fatalf("fresh obstacle state = %+v", ob3)
	}
}
