// Package catalog serializes database metadata into page-chain blobs so
// the whole Database state lives in one page file. Two blobs hang off the
// superblock:
//
//   - the state blob: commit generation, the page-file free list, and one
//     record per dataset (name, R-tree root/height/size, id-space bound) —
//     rewritten on every commit;
//   - the obstacle blob: the obstacle R-tree root/height/size, the obstacle
//     id space, and every live obstacle polygon — rewritten only when
//     obstacles change.
//
// Point coordinates are deliberately absent: a dataset's points are
// recovered on open by scanning its tree's leaves (every leaf entry is a
// degenerate rectangle plus the entity id), and the id free list is the
// complement of the scanned ids in [0, IDBound).
//
// A blob is stored as a chain of pages, each holding a next-page pointer in
// its first four bytes; the superblock's BlobRef records the chain root,
// exact byte length, and content CRC.
package catalog

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/geom"
	"repro/internal/pagefile"
)

// ErrCorrupt reports a blob that fails structural validation or its CRC.
var ErrCorrupt = errors.New("catalog: corrupt blob")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// TreeMeta locates one R-tree inside the shared page file.
type TreeMeta struct {
	Root   pagefile.PageID
	Height int
	Size   int
}

// DatasetMeta describes one named point dataset.
type DatasetMeta struct {
	Name    string
	Tree    TreeMeta
	IDBound int64 // exclusive upper bound of ids ever assigned
}

// State is the per-commit metadata blob.
type State struct {
	Generation uint64 // the database's committed-mutation counter
	PageFree   []pagefile.PageID
	Datasets   []DatasetMeta
}

// Obstacles is the obstacle metadata blob.
type Obstacles struct {
	Tree       TreeMeta
	IDBound    int64
	Generation uint64                 // the obstacle set's mutation counter
	Polys      map[int64][]geom.Point // live obstacle id -> vertices
}

const (
	stateMagic  = uint32(0x4f425354) // "OBST"
	obstMagic   = uint32(0x4f424f42) // "OBOB"
	blobVersion = 1
)

type encoder struct{ buf bytes.Buffer }

func (e *encoder) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.buf.Write(b[:])
}
func (e *encoder) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf.Write(b[:])
}
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *encoder) str(s string)  { e.u32(uint32(len(s))); e.buf.WriteString(s) }

type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated %s at offset %d", ErrCorrupt, what, d.off)
	}
}

func (d *decoder) u32(what string) uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64(what string) uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) f64(what string) float64 { return math.Float64frombits(d.u64(what)) }

func (d *decoder) str(what string) string {
	n := int(d.u32(what))
	if d.err != nil || n < 0 || d.off+n > len(d.b) {
		d.fail(what)
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (e *encoder) tree(t TreeMeta) {
	e.u32(uint32(t.Root))
	e.u32(uint32(t.Height))
	e.u64(uint64(t.Size))
}

func (d *decoder) tree(what string) TreeMeta {
	return TreeMeta{
		Root:   pagefile.PageID(d.u32(what)),
		Height: int(d.u32(what)),
		Size:   int(d.u64(what)),
	}
}

// EncodeState serializes s.
func EncodeState(s *State) []byte {
	var e encoder
	e.u32(stateMagic)
	e.u32(blobVersion)
	e.u64(s.Generation)
	e.u32(uint32(len(s.PageFree)))
	for _, id := range s.PageFree {
		e.u32(uint32(id))
	}
	e.u32(uint32(len(s.Datasets)))
	for _, ds := range s.Datasets {
		e.str(ds.Name)
		e.tree(ds.Tree)
		e.u64(uint64(ds.IDBound))
	}
	return e.buf.Bytes()
}

// DecodeState parses a state blob.
func DecodeState(b []byte) (*State, error) {
	d := &decoder{b: b}
	if m := d.u32("magic"); d.err == nil && m != stateMagic {
		return nil, fmt.Errorf("%w: state magic %#x", ErrCorrupt, m)
	}
	if v := d.u32("version"); d.err == nil && v != blobVersion {
		return nil, fmt.Errorf("%w: state version %d", ErrCorrupt, v)
	}
	s := &State{Generation: d.u64("generation")}
	nFree := int(d.u32("free count"))
	if d.err == nil && nFree > len(b) { // cheap sanity bound: each entry is 4 bytes
		return nil, fmt.Errorf("%w: free list count %d", ErrCorrupt, nFree)
	}
	for i := 0; i < nFree && d.err == nil; i++ {
		s.PageFree = append(s.PageFree, pagefile.PageID(d.u32("free entry")))
	}
	nDS := int(d.u32("dataset count"))
	for i := 0; i < nDS && d.err == nil; i++ {
		ds := DatasetMeta{Name: d.str("dataset name")}
		ds.Tree = d.tree("dataset tree")
		ds.IDBound = int64(d.u64("dataset id bound"))
		s.Datasets = append(s.Datasets, ds)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes in state blob", ErrCorrupt, len(b)-d.off)
	}
	return s, nil
}

// EncodeObstacles serializes o with polygons in ascending id order.
func EncodeObstacles(o *Obstacles) []byte {
	var e encoder
	e.u32(obstMagic)
	e.u32(blobVersion)
	e.tree(o.Tree)
	e.u64(uint64(o.IDBound))
	e.u64(o.Generation)
	ids := make([]int64, 0, len(o.Polys))
	for id := range o.Polys {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ { // insertion sort: id sets are small or nearly sorted
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	e.u32(uint32(len(ids)))
	for _, id := range ids {
		e.u64(uint64(id))
		v := o.Polys[id]
		e.u32(uint32(len(v)))
		for _, p := range v {
			e.f64(p.X)
			e.f64(p.Y)
		}
	}
	return e.buf.Bytes()
}

// DecodeObstacles parses an obstacle blob.
func DecodeObstacles(b []byte) (*Obstacles, error) {
	d := &decoder{b: b}
	if m := d.u32("magic"); d.err == nil && m != obstMagic {
		return nil, fmt.Errorf("%w: obstacle magic %#x", ErrCorrupt, m)
	}
	if v := d.u32("version"); d.err == nil && v != blobVersion {
		return nil, fmt.Errorf("%w: obstacle version %d", ErrCorrupt, v)
	}
	o := &Obstacles{Polys: make(map[int64][]geom.Point)}
	o.Tree = d.tree("obstacle tree")
	o.IDBound = int64(d.u64("obstacle id bound"))
	o.Generation = d.u64("obstacle generation")
	n := int(d.u32("obstacle count"))
	for i := 0; i < n && d.err == nil; i++ {
		id := int64(d.u64("obstacle id"))
		nv := int(d.u32("vertex count"))
		if d.err == nil && (nv < 3 || d.off+nv*16 > len(b)) {
			return nil, fmt.Errorf("%w: obstacle %d has vertex count %d", ErrCorrupt, id, nv)
		}
		v := make([]geom.Point, nv)
		for j := 0; j < nv; j++ {
			v[j] = geom.Pt(d.f64("vertex x"), d.f64("vertex y"))
		}
		if _, dup := o.Polys[id]; dup && d.err == nil {
			return nil, fmt.Errorf("%w: duplicate obstacle id %d", ErrCorrupt, id)
		}
		o.Polys[id] = v
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes in obstacle blob", ErrCorrupt, len(b)-d.off)
	}
	return o, nil
}

// chainPayload is the per-page payload capacity: the first four bytes of a
// chain page hold the next page id.
func chainPayload(pageSize int) int { return pageSize - 4 }

// BlobPages returns the number of chain pages a blob of n bytes occupies.
func BlobPages(pageSize, n int) int {
	if n == 0 {
		return 0
	}
	per := chainPayload(pageSize)
	return (n + per - 1) / per
}

// WriteBlob writes data as a chain across the given pre-allocated pages
// (len(pages) must be at least BlobPages; extra pages are chained in and
// zero-padded, letting callers over-allocate when sizing interacts with the
// free list). It returns the BlobRef for the superblock.
func WriteBlob(st pagefile.Storage, pages []pagefile.PageID, data []byte) (pagefile.BlobRef, error) {
	if len(data) == 0 || len(pages) == 0 {
		return pagefile.BlobRef{}, nil
	}
	ps := st.PageSize()
	if need := BlobPages(ps, len(data)); len(pages) < need {
		return pagefile.BlobRef{}, fmt.Errorf("catalog: blob of %d bytes needs %d pages, got %d", len(data), need, len(pages))
	}
	buf := make([]byte, ps)
	rest := data
	for i, id := range pages {
		next := pagefile.InvalidPage
		if i+1 < len(pages) {
			next = pages[i+1]
		}
		binary.LittleEndian.PutUint32(buf[:4], uint32(next))
		n := copy(buf[4:], rest)
		rest = rest[n:]
		for j := 4 + n; j < ps; j++ {
			buf[j] = 0
		}
		if err := st.WritePage(id, buf); err != nil {
			return pagefile.BlobRef{}, err
		}
	}
	return pagefile.BlobRef{
		Root: pages[0],
		Len:  uint64(len(data)),
		CRC:  crc32.Checksum(data, crcTable),
	}, nil
}

// ReadBlob reads the chain at ref and verifies its CRC.
func ReadBlob(st pagefile.Storage, ref pagefile.BlobRef) ([]byte, error) {
	if ref.Root == pagefile.InvalidPage || ref.Len == 0 {
		return nil, nil
	}
	ps := st.PageSize()
	per := chainPayload(ps)
	data := make([]byte, 0, ref.Len)
	buf := make([]byte, ps)
	id := ref.Root
	for remaining := int(ref.Len); remaining > 0; {
		if id == pagefile.InvalidPage {
			return nil, fmt.Errorf("%w: blob chain ends %d bytes early", ErrCorrupt, remaining)
		}
		if err := st.ReadPage(id, buf); err != nil {
			return nil, err
		}
		n := per
		if n > remaining {
			n = remaining
		}
		data = append(data, buf[4:4+n]...)
		remaining -= n
		id = pagefile.PageID(binary.LittleEndian.Uint32(buf[:4]))
	}
	if got := crc32.Checksum(data, crcTable); got != ref.CRC {
		return nil, fmt.Errorf("%w: blob checksum %#x, want %#x", ErrCorrupt, got, ref.CRC)
	}
	return data, nil
}

// BlobChain returns the page ids of the chain at ref, for freeing an old
// blob before writing its replacement.
func BlobChain(st pagefile.Storage, ref pagefile.BlobRef) ([]pagefile.PageID, error) {
	if ref.Root == pagefile.InvalidPage || ref.Len == 0 {
		return nil, nil
	}
	buf := make([]byte, st.PageSize())
	var pages []pagefile.PageID
	id := ref.Root
	for id != pagefile.InvalidPage {
		pages = append(pages, id)
		if len(pages) > 1<<22 {
			return nil, fmt.Errorf("%w: blob chain cycle at page %d", ErrCorrupt, id)
		}
		if err := st.ReadPage(id, buf); err != nil {
			return nil, err
		}
		id = pagefile.PageID(binary.LittleEndian.Uint32(buf[:4]))
	}
	return pages, nil
}
