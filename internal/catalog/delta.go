package catalog

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/pagefile"
)

// Delta is the incremental catalog record one commit appends to the WAL in
// place of rewriting the state and obstacle blobs. It carries only what the
// commit changed: the new generation and allocation frontier always (they
// are a few bytes), the ordered free-list ops of the commit, the metadata
// of just the datasets the commit touched, and — only when obstacles
// changed — the obstacle-set header plus the individual polygons added and
// ids removed. Encoded size is therefore independent of the total obstacle
// and dataset population; full blobs are rewritten only at checkpoints.
//
// Recovery starts from the checkpoint blobs referenced by the data file's
// superblock and applies, in commit order, the deltas of every WAL
// transaction whose sequence number exceeds the superblock's — deltas at or
// below it are already folded into the blobs (a crash can land between the
// checkpoint's superblock write and its WAL truncation, so Apply must be
// guarded by that sequence check to stay idempotent).
type Delta struct {
	Generation uint64             // database mutation counter after the commit
	Next       pagefile.PageID    // allocation frontier after the commit
	FreeOps    []pagefile.AllocOp // ordered free-list mutations of the commit
	Datasets   []DatasetMeta      // upserts for datasets the commit touched
	Obst       *ObstacleDelta     // nil when the commit changed no obstacles
}

// ObstacleDelta is the obstacle-set part of a commit's delta.
type ObstacleDelta struct {
	Tree       TreeMeta // obstacle R-tree location after the commit
	IDBound    int64
	Generation uint64
	Added      []ObstacleAdd
	Removed    []int64
}

// ObstacleAdd is one polygon indexed by the commit.
type ObstacleAdd struct {
	ID    int64
	Verts []geom.Point
}

const deltaMagic = uint32(0x4f42444c) // "OBDL"

// EncodeDelta serializes d.
func EncodeDelta(d *Delta) []byte {
	var e encoder
	e.u32(deltaMagic)
	e.u32(blobVersion)
	e.u64(d.Generation)
	e.u32(uint32(d.Next))
	e.u32(uint32(len(d.FreeOps)))
	for _, op := range d.FreeOps {
		kind := uint32(0)
		if op.Take {
			kind = 1
		}
		e.u32(kind)
		e.u32(uint32(op.ID))
	}
	e.u32(uint32(len(d.Datasets)))
	for _, ds := range d.Datasets {
		e.str(ds.Name)
		e.tree(ds.Tree)
		e.u64(uint64(ds.IDBound))
	}
	if d.Obst == nil {
		e.u32(0)
		return e.buf.Bytes()
	}
	e.u32(1)
	o := d.Obst
	e.tree(o.Tree)
	e.u64(uint64(o.IDBound))
	e.u64(o.Generation)
	e.u32(uint32(len(o.Added)))
	for _, add := range o.Added {
		e.u64(uint64(add.ID))
		e.u32(uint32(len(add.Verts)))
		for _, p := range add.Verts {
			e.f64(p.X)
			e.f64(p.Y)
		}
	}
	e.u32(uint32(len(o.Removed)))
	for _, id := range o.Removed {
		e.u64(uint64(id))
	}
	return e.buf.Bytes()
}

// DecodeDelta parses a delta record.
func DecodeDelta(b []byte) (*Delta, error) {
	d := &decoder{b: b}
	if m := d.u32("magic"); d.err == nil && m != deltaMagic {
		return nil, fmt.Errorf("%w: delta magic %#x", ErrCorrupt, m)
	}
	if v := d.u32("version"); d.err == nil && v != blobVersion {
		return nil, fmt.Errorf("%w: delta version %d", ErrCorrupt, v)
	}
	out := &Delta{Generation: d.u64("generation"), Next: pagefile.PageID(d.u32("next"))}
	nOps := int(d.u32("free op count"))
	if d.err == nil && nOps > len(b) { // each op is 8 bytes
		return nil, fmt.Errorf("%w: free op count %d", ErrCorrupt, nOps)
	}
	for i := 0; i < nOps && d.err == nil; i++ {
		kind := d.u32("free op kind")
		if d.err == nil && kind > 1 {
			return nil, fmt.Errorf("%w: free op kind %d", ErrCorrupt, kind)
		}
		out.FreeOps = append(out.FreeOps, pagefile.AllocOp{
			Take: kind == 1,
			ID:   pagefile.PageID(d.u32("free op id")),
		})
	}
	nDS := int(d.u32("dataset count"))
	for i := 0; i < nDS && d.err == nil; i++ {
		ds := DatasetMeta{Name: d.str("dataset name")}
		ds.Tree = d.tree("dataset tree")
		ds.IDBound = int64(d.u64("dataset id bound"))
		out.Datasets = append(out.Datasets, ds)
	}
	switch hasObst := d.u32("obstacle flag"); {
	case d.err != nil:
	case hasObst > 1:
		return nil, fmt.Errorf("%w: obstacle flag %d", ErrCorrupt, hasObst)
	case hasObst == 1:
		o := &ObstacleDelta{}
		o.Tree = d.tree("obstacle tree")
		o.IDBound = int64(d.u64("obstacle id bound"))
		o.Generation = d.u64("obstacle generation")
		nAdd := int(d.u32("obstacle add count"))
		for i := 0; i < nAdd && d.err == nil; i++ {
			add := ObstacleAdd{ID: int64(d.u64("obstacle id"))}
			nv := int(d.u32("vertex count"))
			if d.err == nil && (nv < 3 || d.off+nv*16 > len(b)) {
				return nil, fmt.Errorf("%w: obstacle %d has vertex count %d", ErrCorrupt, add.ID, nv)
			}
			add.Verts = make([]geom.Point, nv)
			for j := 0; j < nv; j++ {
				add.Verts[j] = geom.Pt(d.f64("vertex x"), d.f64("vertex y"))
			}
			o.Added = append(o.Added, add)
		}
		nRem := int(d.u32("obstacle remove count"))
		if d.err == nil && nRem > len(b) {
			return nil, fmt.Errorf("%w: obstacle remove count %d", ErrCorrupt, nRem)
		}
		for i := 0; i < nRem && d.err == nil; i++ {
			o.Removed = append(o.Removed, int64(d.u64("removed obstacle id")))
		}
		out.Obst = o
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes in delta", ErrCorrupt, len(b)-d.off)
	}
	return out, nil
}

// Apply folds the delta into a recovered catalog state: st is mutated in
// place, and the returned obstacle state is ob with the obstacle part
// applied (ob may be nil when no obstacle blob existed yet; a fresh one is
// created on the first obstacle-bearing delta). Apply validates against the
// running state — taking a page that is not free, re-adding a live obstacle
// id, removing a dead one — and reports ErrCorrupt, because a delta that
// does not match the state it claims to follow means the log and the
// checkpoint disagree.
func (d *Delta) Apply(st *State, ob *Obstacles) (*Obstacles, error) {
	st.Generation = d.Generation
	if len(d.FreeOps) > 0 {
		free := st.PageFree
		inFree := make(map[pagefile.PageID]int, len(free))
		for i, id := range free {
			inFree[id] = i
		}
		for _, op := range d.FreeOps {
			if op.Take {
				i, ok := inFree[op.ID]
				if !ok {
					return ob, fmt.Errorf("%w: delta takes page %d, which is not free", ErrCorrupt, op.ID)
				}
				last := len(free) - 1
				free[i] = free[last]
				inFree[free[i]] = i
				free = free[:last]
				delete(inFree, op.ID)
			} else {
				if _, dup := inFree[op.ID]; dup {
					return ob, fmt.Errorf("%w: delta frees page %d twice", ErrCorrupt, op.ID)
				}
				inFree[op.ID] = len(free)
				free = append(free, op.ID)
			}
		}
		st.PageFree = free
	}
	for _, ds := range d.Datasets {
		found := false
		for i := range st.Datasets {
			if st.Datasets[i].Name == ds.Name {
				st.Datasets[i] = ds
				found = true
				break
			}
		}
		if !found {
			st.Datasets = append(st.Datasets, ds)
		}
	}
	if d.Obst == nil {
		return ob, nil
	}
	if ob == nil {
		ob = &Obstacles{Polys: make(map[int64][]geom.Point)}
	}
	ob.Tree = d.Obst.Tree
	ob.IDBound = d.Obst.IDBound
	ob.Generation = d.Obst.Generation
	for _, id := range d.Obst.Removed {
		if _, live := ob.Polys[id]; !live {
			return ob, fmt.Errorf("%w: delta removes obstacle %d, which is not live", ErrCorrupt, id)
		}
		delete(ob.Polys, id)
	}
	for _, add := range d.Obst.Added {
		if _, dup := ob.Polys[add.ID]; dup {
			return ob, fmt.Errorf("%w: delta re-adds live obstacle %d", ErrCorrupt, add.ID)
		}
		ob.Polys[add.ID] = add.Verts
	}
	return ob, nil
}
