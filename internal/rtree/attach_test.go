package rtree

import (
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/pagefile"
)

// TestAttachReopensTree pins the durable cold-open path: a tree rebuilt via
// Attach over the same storage (after flushing the original's buffers) must
// hold exactly the same items and satisfy all invariants, without any
// bulk-load or reinsertion.
func TestAttachReopensTree(t *testing.T) {
	st := pagefile.NewMemStorage(256)
	opts := Options{PageSize: 256, Storage: st}
	tr, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		p := geom.Pt(float64(i%17)*3.5, float64(i%23)*2.25)
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i += 5 {
		p := geom.Pt(float64(i%17)*3.5, float64(i%23)*2.25)
		if _, err := tr.Delete(geom.PointRect(p), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.PageFile().Flush(); err != nil {
		t.Fatal(err)
	}

	back, err := Attach(opts, tr.Root(), tr.Height(), tr.Len())
	if err != nil {
		t.Fatal(err)
	}
	if err := back.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	want, err := tr.All()
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) != tr.Len() {
		t.Fatalf("attached tree has %d items, original %d", len(got), len(want))
	}
	sort.Slice(want, func(i, j int) bool { return want[i].Data < want[j].Data })
	sort.Slice(got, func(i, j int) bool { return got[i].Data < got[j].Data })
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("item %d: %+v vs %+v", i, want[i], got[i])
		}
	}

	// A wrong height is caught by the root-level validation.
	if _, err := Attach(opts, tr.Root(), tr.Height()+1, tr.Len()); err == nil {
		t.Fatal("attach with wrong height accepted")
	}
	// Attach without explicit storage is refused.
	if _, err := Attach(Options{PageSize: 256}, tr.Root(), tr.Height(), tr.Len()); err == nil {
		t.Fatal("attach without storage accepted")
	}
}
