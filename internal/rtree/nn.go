package rtree

import (
	"container/heap"

	"repro/internal/geom"
	"repro/internal/pagefile"
)

// Neighbor is one result of an incremental nearest-neighbor search.
type Neighbor struct {
	Item Item
	Dist float64 // Euclidean distance from the query point (mindist for rectangles)
}

type nnEntry struct {
	dist   float64
	isItem bool
	item   Item            // valid when isItem
	page   pagefile.PageID // valid when !isItem
}

type nnHeap []nnEntry

func (h nnHeap) Len() int { return len(h) }
func (h nnHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	// Report items before expanding equally distant nodes.
	return h[i].isItem && !h[j].isItem
}
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(nnEntry)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NNIterator reports the items of a tree in ascending order of Euclidean
// distance from a query point — the best-first incremental algorithm of
// [HS99]. It is optimal (it reads only the pages any correct algorithm must
// read) and supports retrieval without a predeclared k, which the obstructed
// NN/closest-pair algorithms rely on to shrink their search bound on the fly.
type NNIterator struct {
	t   *Tree
	q   geom.Point
	h   nnHeap
	err error
}

// NearestIterator starts an incremental nearest-neighbor search around q.
func (t *Tree) NearestIterator(q geom.Point) *NNIterator {
	it := &NNIterator{t: t, q: q}
	it.h = nnHeap{{dist: 0, page: t.root}}
	return it
}

// Next returns the next closest item. ok is false when the tree is exhausted
// or an I/O error occurred (check Err).
func (it *NNIterator) Next() (Neighbor, bool) {
	for it.err == nil && len(it.h) > 0 {
		e := heap.Pop(&it.h).(nnEntry)
		if e.isItem {
			return Neighbor{Item: e.item, Dist: e.dist}, true
		}
		n, err := it.t.readNode(e.page)
		if err != nil {
			it.err = err
			return Neighbor{}, false
		}
		for _, c := range n.entries {
			d := c.rect.MinDist(it.q)
			if n.isLeaf() {
				heap.Push(&it.h, nnEntry{dist: d, isItem: true, item: c.item()})
			} else {
				heap.Push(&it.h, nnEntry{dist: d, page: pagefile.PageID(c.ref)})
			}
		}
	}
	return Neighbor{}, false
}

// Err returns the first I/O error encountered, if any.
func (it *NNIterator) Err() error { return it.err }

// NearestK returns the k items closest to q (fewer when the tree is small).
func (t *Tree) NearestK(q geom.Point, k int) ([]Neighbor, error) {
	it := t.NearestIterator(q)
	out := make([]Neighbor, 0, k)
	for len(out) < k {
		nb, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, nb)
	}
	return out, it.Err()
}
