// Package rtree implements a disk-resident R*-tree [BKSS90] over the
// simulated page file of package pagefile. Every node occupies exactly one
// page and all node accesses go through the file's LRU buffer, so the
// PhysicalReads counter of the page file reproduces the "page accesses"
// metric of the paper's experiments.
//
// Beyond insertion and deletion the package provides the Euclidean query
// algorithms the paper builds on:
//
//   - window and circular range search (Section 2.1),
//   - best-first incremental nearest neighbors [HS99],
//   - the e-distance R-tree join [BKS93], and
//   - incremental closest pairs [HS98, CMTV00].
//
// Trees are built either by repeated R* insertion or by STR/Hilbert bulk
// loading.
package rtree

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/pagefile"
)

// Item is a data entry: a bounding rectangle (a degenerate rectangle for
// points) plus an opaque identifier resolving to the caller's object.
type Item struct {
	Rect geom.Rect
	Data int64
}

// PointItem returns the Item for a point datum.
func PointItem(p geom.Point, data int64) Item {
	return Item{Rect: geom.PointRect(p), Data: data}
}

// Options configures a tree.
type Options struct {
	// PageSize is the on-disk node size in bytes (default 4096, as in the
	// paper's experiments).
	PageSize int
	// BufferPages is the initial LRU buffer capacity in pages (default 64).
	// Callers typically resize it to 10% of the tree after loading, per the
	// paper's setup, via Tree.PageFile().SetBufferPages.
	BufferPages int
	// MinFillFraction is the minimum node occupancy m/M (default 0.4, the
	// R* recommendation).
	MinFillFraction float64
	// ReinsertFraction is the share of entries removed on forced reinsert
	// (default 0.3, the R* recommendation).
	ReinsertFraction float64
	// Storage optionally overrides the page backend (default in-memory).
	Storage pagefile.Storage
}

func (o Options) withDefaults() Options {
	if o.PageSize <= 0 {
		o.PageSize = pagefile.DefaultPageSize
	}
	if o.BufferPages <= 0 {
		o.BufferPages = 64
	}
	if o.MinFillFraction <= 0 || o.MinFillFraction > 0.5 {
		o.MinFillFraction = 0.4
	}
	if o.ReinsertFraction <= 0 || o.ReinsertFraction >= 1 {
		o.ReinsertFraction = 0.3
	}
	return o
}

const (
	nodeHeaderSize = 4  // level uint16 + count uint16
	entrySize      = 40 // 4 float64 coordinates + 8-byte reference
)

// entry is one slot of a node: an MBR plus either a child page (internal
// nodes) or a data id (leaves).
type entry struct {
	rect geom.Rect
	ref  uint64
}

func (e entry) item() Item { return Item{Rect: e.rect, Data: int64(e.ref)} }

// node is the in-memory image of one page.
type node struct {
	id      pagefile.PageID
	level   uint16 // 0 = leaf
	entries []entry
}

func (n *node) isLeaf() bool { return n.level == 0 }

func (n *node) mbr() geom.Rect {
	r := geom.EmptyRect()
	for _, e := range n.entries {
		r = r.Union(e.rect)
	}
	return r
}

// Tree is a disk-resident R*-tree. A fully built tree is safe for any number
// of concurrent readers (the page file serializes buffer traffic); mutation
// (Insert, Delete) must not run concurrently with anything else on the same
// tree.
type Tree struct {
	pf       *pagefile.File
	opts     Options
	root     pagefile.PageID
	height   int // number of levels; 1 = root is a leaf
	size     int // number of data items
	maxE     int
	minE     int
	pending  []pendingInsert // forced-reinsert / condense work queue
	reinsLvl map[uint16]bool // levels already reinserted during this insert
	// ioExtra, when non-nil, additionally receives every page-read counter
	// of this handle — the per-query attribution hook behind Counted.
	ioExtra *pagefile.Stats

	// Copy-on-write state (EnableCOW). In COW mode a mutation epoch
	// (BeginEpoch..TakeRetired) never overwrites a page allocated before
	// the epoch: writeNode relocates the node to a fresh page and retires
	// the old one, so a View taken between epochs stays a fully consistent
	// tree no matter how the original mutates afterwards.
	cow     bool
	owned   map[pagefile.PageID]struct{} // pages allocated this epoch
	retired []pagefile.PageID            // pages the new generation abandoned
	// cowCopies counts pages relocated by COW writes; a pointer so views
	// made by Counted/View share the counter.
	cowCopies *atomic.Uint64
}

// EnableCOW switches the tree to copy-on-write mutation. From the next
// BeginEpoch on, mutators write only pages allocated within their own
// epoch, and pages a mutation abandons surface through TakeRetired instead
// of returning to the page file — the caller frees them once no reader can
// still hold a View that references them.
func (t *Tree) EnableCOW() {
	t.cow = true
	if t.owned == nil {
		t.owned = make(map[pagefile.PageID]struct{})
	}
}

// BeginEpoch starts a new mutation epoch: every page written from here on
// is either freshly allocated or cloned (relocated) from its current image
// first. Pages already retired stay queued for TakeRetired.
func (t *Tree) BeginEpoch() {
	if t.cow {
		clear(t.owned)
	}
}

// View returns a frozen read-only view of the tree at its current root.
// The view shares the page file (and its warm buffer) with the original
// but keeps its own root/height/size, so with COW enabled later mutations
// of the original are invisible to it.
func (t *Tree) View() *Tree {
	cp := *t
	cp.pending, cp.reinsLvl = nil, nil
	cp.owned, cp.retired = nil, nil
	return &cp
}

// TakeRetired returns and clears the pages that mutation epochs since the
// last call stopped referencing. The tree never frees them itself in COW
// mode: an older View may still read them, so the owner frees them once no
// such view remains pinned.
func (t *Tree) TakeRetired() []pagefile.PageID {
	out := t.retired
	t.retired = nil
	return out
}

// COWCopies returns the cumulative number of pages relocated by
// copy-on-write mutation.
func (t *Tree) COWCopies() uint64 { return t.cowCopies.Load() }

// allocPage reserves a page for a node written this epoch.
func (t *Tree) allocPage() (pagefile.PageID, error) {
	id, err := t.pf.Allocate()
	if err == nil && t.cow {
		t.owned[id] = struct{}{}
	}
	return id, err
}

// freeNode releases a node page: pages allocated this epoch return to the
// page file immediately (no published view can reference them), while
// older pages are retired for the owner to free when safe.
func (t *Tree) freeNode(id pagefile.PageID) error {
	if t.cow {
		if _, ok := t.owned[id]; !ok {
			t.retired = append(t.retired, id)
			return nil
		}
		delete(t.owned, id)
	}
	return t.pf.Free(id)
}

// Pages appends the ids of every page reachable from the root — the page
// set a backup must copy — to dst and returns it.
func (t *Tree) Pages(dst []pagefile.PageID) ([]pagefile.PageID, error) {
	return t.pages(t.root, dst)
}

func (t *Tree) pages(id pagefile.PageID, dst []pagefile.PageID) ([]pagefile.PageID, error) {
	dst = append(dst, id)
	n, err := t.readNode(id)
	if err != nil {
		return dst, err
	}
	if n.isLeaf() {
		return dst, nil
	}
	for _, e := range n.entries {
		if dst, err = t.pages(pagefile.PageID(e.ref), dst); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// Counted returns a read-only view of the tree whose page reads are
// additionally counted into extra, attributing I/O to one query while the
// shared buffer keeps serving everyone. The view shares all pages and the
// buffer with the original; extra must be confined to a single goroutine.
func (t *Tree) Counted(extra *pagefile.Stats) *Tree {
	cp := *t
	cp.ioExtra = extra
	return &cp
}

type pendingInsert struct {
	e     entry
	level uint16
}

// New returns an empty tree.
func New(opts Options) (*Tree, error) {
	opts = opts.withDefaults()
	st := opts.Storage
	if st == nil {
		st = pagefile.NewMemStorage(opts.PageSize)
	}
	if st.PageSize() != opts.PageSize {
		return nil, fmt.Errorf("rtree: storage page size %d != option %d", st.PageSize(), opts.PageSize)
	}
	maxE := (opts.PageSize - nodeHeaderSize) / entrySize
	if maxE < 4 {
		return nil, fmt.Errorf("rtree: page size %d too small (fanout %d < 4)", opts.PageSize, maxE)
	}
	minE := int(float64(maxE) * opts.MinFillFraction)
	if minE < 1 {
		minE = 1
	}
	t := &Tree{
		pf:        pagefile.NewWithStorage(st, opts.BufferPages),
		opts:      opts,
		height:    1,
		maxE:      maxE,
		minE:      minE,
		reinsLvl:  make(map[uint16]bool),
		cowCopies: new(atomic.Uint64),
	}
	rootNode := &node{level: 0}
	var err error
	rootNode.id, err = t.pf.Allocate()
	if err != nil {
		return nil, err
	}
	if err := t.writeNode(rootNode); err != nil {
		return nil, err
	}
	t.root = rootNode.id
	return t, nil
}

// Attach re-opens a tree whose pages already live in opts.Storage — the
// durable backend's cold-open path, which reads the root/height/size triple
// from the catalog instead of bulk-loading. The root node is read once to
// validate that the triple matches the stored pages.
func Attach(opts Options, root pagefile.PageID, height, size int) (*Tree, error) {
	if opts.Storage == nil {
		return nil, fmt.Errorf("rtree: Attach requires an explicit Storage")
	}
	t, err := New(opts)
	if err != nil {
		return nil, err
	}
	// New allocated a fresh root page for the empty tree; release it and
	// point at the persisted root instead.
	if err := t.pf.Free(t.root); err != nil {
		return nil, err
	}
	if height < 1 || size < 0 {
		return nil, fmt.Errorf("rtree: attach with height %d, size %d", height, size)
	}
	t.root, t.height, t.size = root, height, size
	n, err := t.readNode(root)
	if err != nil {
		return nil, fmt.Errorf("rtree: attach: %w", err)
	}
	if int(n.level) != height-1 {
		return nil, fmt.Errorf("rtree: attach: root level %d does not match height %d", n.level, height)
	}
	return t, nil
}

// Len returns the number of data items in the tree.
func (t *Tree) Len() int { return t.size }

// Root returns the page id of the root node, for catalog serialization.
func (t *Tree) Root() pagefile.PageID { return t.root }

// Height returns the number of levels (1 when the root is a leaf).
func (t *Tree) Height() int { return t.height }

// Capacity returns the per-node entry capacity (the fanout M).
func (t *Tree) Capacity() int { return t.maxE }

// MinEntries returns the minimum node occupancy m.
func (t *Tree) MinEntries() int { return t.minE }

// PageFile exposes the underlying page file, for I/O statistics and buffer
// sizing.
func (t *Tree) PageFile() *pagefile.File { return t.pf }

// Bounds returns the MBR of all data in the tree (empty for an empty tree).
func (t *Tree) Bounds() (geom.Rect, error) {
	n, err := t.readNode(t.root)
	if err != nil {
		return geom.Rect{}, err
	}
	return n.mbr(), nil
}

// readNode deserializes the node stored on page id.
func (t *Tree) readNode(id pagefile.PageID) (*node, error) {
	p, err := t.pf.ReadCounted(id, t.ioExtra)
	if err != nil {
		return nil, fmt.Errorf("rtree: read node %d: %w", id, err)
	}
	level := binary.LittleEndian.Uint16(p[0:2])
	count := int(binary.LittleEndian.Uint16(p[2:4]))
	if count < 0 || nodeHeaderSize+count*entrySize > len(p) {
		return nil, fmt.Errorf("rtree: corrupt node %d: count %d", id, count)
	}
	n := &node{id: id, level: level, entries: make([]entry, count)}
	off := nodeHeaderSize
	for i := 0; i < count; i++ {
		n.entries[i] = entry{
			rect: geom.Rect{
				MinX: f64(p[off:]), MinY: f64(p[off+8:]),
				MaxX: f64(p[off+16:]), MaxY: f64(p[off+24:]),
			},
			ref: binary.LittleEndian.Uint64(p[off+32:]),
		}
		off += entrySize
	}
	return n, nil
}

// writeNode serializes n onto its page. In COW mode a node whose page
// predates the current epoch is relocated first: the old page is retired
// (still referenced by published views) and the node moves to a fresh one;
// the caller must propagate the new n.id into the parent entry.
func (t *Tree) writeNode(n *node) error {
	if len(n.entries) > t.maxE {
		return fmt.Errorf("rtree: node %d overflows page: %d > %d", n.id, len(n.entries), t.maxE)
	}
	if t.cow {
		if _, ok := t.owned[n.id]; !ok {
			t.retired = append(t.retired, n.id)
			id, err := t.pf.Allocate()
			if err != nil {
				return err
			}
			t.owned[id] = struct{}{}
			n.id = id
			t.cowCopies.Add(1)
		}
	}
	p := make([]byte, t.pf.PageSize())
	binary.LittleEndian.PutUint16(p[0:2], n.level)
	binary.LittleEndian.PutUint16(p[2:4], uint16(len(n.entries)))
	off := nodeHeaderSize
	for _, e := range n.entries {
		putF64(p[off:], e.rect.MinX)
		putF64(p[off+8:], e.rect.MinY)
		putF64(p[off+16:], e.rect.MaxX)
		putF64(p[off+24:], e.rect.MaxY)
		binary.LittleEndian.PutUint64(p[off+32:], e.ref)
		off += entrySize
	}
	if err := t.pf.Write(n.id, p); err != nil {
		return fmt.Errorf("rtree: write node %d: %w", n.id, err)
	}
	return nil
}

func f64(b []byte) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }

func putF64(b []byte, v float64) { binary.LittleEndian.PutUint64(b, math.Float64bits(v)) }

// CheckInvariants walks the whole tree verifying structural invariants:
// MBR containment, occupancy bounds, uniform leaf depth, and item count.
// It is intended for tests.
func (t *Tree) CheckInvariants() error {
	count, err := t.check(t.root, t.height-1, true)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: item count %d != size %d", count, t.size)
	}
	return nil
}

func (t *Tree) check(id pagefile.PageID, wantLevel int, isRoot bool) (int, error) {
	n, err := t.readNode(id)
	if err != nil {
		return 0, err
	}
	if int(n.level) != wantLevel {
		return 0, fmt.Errorf("rtree: node %d level %d, want %d", id, n.level, wantLevel)
	}
	if !isRoot && len(n.entries) < t.minE {
		return 0, fmt.Errorf("rtree: node %d underfull: %d < %d", id, len(n.entries), t.minE)
	}
	if len(n.entries) > t.maxE {
		return 0, fmt.Errorf("rtree: node %d overfull: %d > %d", id, len(n.entries), t.maxE)
	}
	if isRoot && t.height > 1 && len(n.entries) < 2 {
		return 0, fmt.Errorf("rtree: internal root has %d entries", len(n.entries))
	}
	if n.isLeaf() {
		return len(n.entries), nil
	}
	total := 0
	for _, e := range n.entries {
		child, err := t.readNode(pagefile.PageID(e.ref))
		if err != nil {
			return 0, err
		}
		cm := child.mbr()
		if !e.rect.ContainsRect(cm) {
			return 0, fmt.Errorf("rtree: node %d entry MBR %v does not contain child %d MBR %v",
				id, e.rect, e.ref, cm)
		}
		sub, err := t.check(pagefile.PageID(e.ref), wantLevel-1, false)
		if err != nil {
			return 0, err
		}
		total += sub
	}
	return total, nil
}
