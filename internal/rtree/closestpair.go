package rtree

import (
	"container/heap"

	"repro/internal/geom"
	"repro/internal/pagefile"
)

// PairNeighbor is one result of an incremental closest-pair search.
type PairNeighbor struct {
	A, B Item
	Dist float64 // Euclidean mindist of the two rectangles (exact for points)
}

// cpSide is one half of a heap element: either a data item or a node.
type cpSide struct {
	rect   geom.Rect
	isItem bool
	item   Item
	page   pagefile.PageID
	level  uint16
}

type cpEntry struct {
	dist float64
	a, b cpSide
}

type cpHeap []cpEntry

func (h cpHeap) Len() int { return len(h) }
func (h cpHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	ii := h[i].a.isItem && h[i].b.isItem
	jj := h[j].a.isItem && h[j].b.isItem
	return ii && !jj
}
func (h cpHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cpHeap) Push(x interface{}) { *h = append(*h, x.(cpEntry)) }
func (h *cpHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// CPIterator enumerates pairs (a in ta, b in tb) in ascending order of
// Euclidean distance — the incremental distance join of [HS98] specialised
// to closest pairs, with the mindist pruning of [CMTV00]. The obstructed
// closest-pair algorithms consume it without a predeclared k.
type CPIterator struct {
	ta, tb *Tree
	h      cpHeap
	err    error
}

// NewClosestPairIterator starts an incremental closest-pair search over the
// two trees.
func NewClosestPairIterator(ta, tb *Tree) (*CPIterator, error) {
	it := &CPIterator{ta: ta, tb: tb}
	ra, err := ta.readNode(ta.root)
	if err != nil {
		return nil, err
	}
	rb, err := tb.readNode(tb.root)
	if err != nil {
		return nil, err
	}
	if len(ra.entries) == 0 || len(rb.entries) == 0 {
		return it, nil // empty iterator
	}
	a := cpSide{rect: ra.mbr(), page: ta.root, level: ra.level}
	b := cpSide{rect: rb.mbr(), page: tb.root, level: rb.level}
	it.h = cpHeap{{dist: a.rect.MinDistRect(b.rect), a: a, b: b}}
	return it, nil
}

// Next returns the next closest pair. ok is false when exhausted or on I/O
// error (check Err).
func (it *CPIterator) Next() (PairNeighbor, bool) {
	for it.err == nil && len(it.h) > 0 {
		e := heap.Pop(&it.h).(cpEntry)
		if e.a.isItem && e.b.isItem {
			return PairNeighbor{A: e.a.item, B: e.b.item, Dist: e.dist}, true
		}
		// Expand the non-item side with the higher level (ties: larger area).
		expandA := false
		switch {
		case e.b.isItem:
			expandA = true
		case e.a.isItem:
			expandA = false
		case e.a.level != e.b.level:
			expandA = e.a.level > e.b.level
		default:
			expandA = e.a.rect.Area() >= e.b.rect.Area()
		}
		if expandA {
			if it.expand(it.ta, e.a, e.b, false); it.err != nil {
				return PairNeighbor{}, false
			}
		} else {
			if it.expand(it.tb, e.b, e.a, true); it.err != nil {
				return PairNeighbor{}, false
			}
		}
	}
	return PairNeighbor{}, false
}

// expand reads the node side and pairs each of its entries with other.
// When swapped is true, side belongs to tree tb (the B side of pairs).
func (it *CPIterator) expand(t *Tree, side, other cpSide, swapped bool) {
	n, err := t.readNode(side.page)
	if err != nil {
		it.err = err
		return
	}
	for _, c := range n.entries {
		var cs cpSide
		if n.isLeaf() {
			cs = cpSide{rect: c.rect, isItem: true, item: c.item()}
		} else {
			cs = cpSide{rect: c.rect, page: pagefile.PageID(c.ref), level: n.level - 1}
		}
		d := cs.rect.MinDistRect(other.rect)
		if swapped {
			heap.Push(&it.h, cpEntry{dist: d, a: other, b: cs})
		} else {
			heap.Push(&it.h, cpEntry{dist: d, a: cs, b: other})
		}
	}
}

// Err returns the first I/O error encountered, if any.
func (it *CPIterator) Err() error { return it.err }

// ClosestPairs returns the k closest pairs between the trees.
func ClosestPairs(ta, tb *Tree, k int) ([]PairNeighbor, error) {
	it, err := NewClosestPairIterator(ta, tb)
	if err != nil {
		return nil, err
	}
	out := make([]PairNeighbor, 0, k)
	for len(out) < k {
		pr, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, pr)
	}
	return out, it.Err()
}
