package rtree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/hilbert"
	"repro/internal/pagefile"
)

// BulkLoadMethod selects the packing strategy for BulkLoad.
type BulkLoadMethod int

const (
	// STR is sort-tile-recursive packing: sort by x, slice into vertical
	// slabs, sort each slab by y, pack runs into nodes.
	STR BulkLoadMethod = iota
	// Hilbert packs items in Hilbert-curve order of their centers.
	Hilbert
)

// bulkFill is the target occupancy of packed nodes; leaving headroom keeps
// subsequent inserts from splitting immediately.
const bulkFill = 0.9

// BulkLoad builds a tree from items using the given method. It is much
// faster than repeated insertion and produces well-clustered nodes; the
// experiment harness uses it to build the large obstacle/entity trees.
func BulkLoad(opts Options, items []Item, method BulkLoadMethod) (*Tree, error) {
	t, err := New(opts)
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return t, nil
	}
	entries := make([]entry, len(items))
	for i, it := range items {
		if it.Rect.IsEmpty() {
			return nil, fmt.Errorf("rtree: bulk load item %d has empty rectangle", i)
		}
		entries[i] = entry{rect: it.Rect, ref: uint64(it.Data)}
	}
	switch method {
	case STR:
		// ordering happens level by level in packLevel
	case Hilbert:
		b := mbrOf(entries)
		sort.SliceStable(entries, func(i, j int) bool {
			ci, cj := entries[i].rect.Center(), entries[j].rect.Center()
			return hilbert.EncodePoint(ci.X, ci.Y, b.MinX, b.MinY, b.MaxX, b.MaxY) <
				hilbert.EncodePoint(cj.X, cj.Y, b.MinX, b.MinY, b.MaxX, b.MaxY)
		})
	default:
		return nil, fmt.Errorf("rtree: unknown bulk load method %d", method)
	}

	perNode := int(float64(t.maxE) * bulkFill)
	if perNode < 2 {
		perNode = 2
	}
	level := uint16(0)
	for {
		if len(entries) <= t.maxE {
			// Final level: reuse the preallocated root page.
			rootNode := &node{id: t.root, level: level, entries: entries}
			if err := t.writeNode(rootNode); err != nil {
				return nil, err
			}
			t.height = int(level) + 1
			t.size = len(items)
			return t, nil
		}
		next, err := t.packLevel(entries, level, perNode, method)
		if err != nil {
			return nil, err
		}
		entries = next
		level++
	}
}

// packLevel groups entries into nodes of the given level and returns the
// parent entries for the next level up.
func (t *Tree) packLevel(entries []entry, level uint16, perNode int, method BulkLoadMethod) ([]entry, error) {
	if method == STR {
		nodeCount := (len(entries) + perNode - 1) / perNode
		slabs := int(math.Ceil(math.Sqrt(float64(nodeCount))))
		perSlab := slabs * perNode
		sort.SliceStable(entries, func(i, j int) bool {
			return entries[i].rect.Center().X < entries[j].rect.Center().X
		})
		for s := 0; s*perSlab < len(entries); s++ {
			lo := s * perSlab
			hi := lo + perSlab
			if hi > len(entries) {
				hi = len(entries)
			}
			slab := entries[lo:hi]
			sort.SliceStable(slab, func(i, j int) bool {
				return slab[i].rect.Center().Y < slab[j].rect.Center().Y
			})
		}
	}
	var parents []entry
	for lo := 0; lo < len(entries); lo += perNode {
		hi := lo + perNode
		if hi > len(entries) {
			hi = len(entries)
		}
		// Avoid a trailing underfull node: borrow from the previous group.
		if len(entries)-lo < t.minE && len(parents) > 0 {
			// Merge the stragglers into the previous node instead.
			prev := parents[len(parents)-1]
			pn, err := t.readNode(pagefile.PageID(prev.ref))
			if err != nil {
				return nil, err
			}
			if len(pn.entries)+len(entries)-lo <= t.maxE {
				pn.entries = append(pn.entries, entries[lo:]...)
				if err := t.writeNode(pn); err != nil {
					return nil, err
				}
				parents[len(parents)-1].rect = pn.mbr()
				break
			}
			// Rebalance: move items so both nodes satisfy minE.
			need := t.minE - (len(entries) - lo)
			moved := append([]entry{}, pn.entries[len(pn.entries)-need:]...)
			pn.entries = pn.entries[:len(pn.entries)-need]
			if err := t.writeNode(pn); err != nil {
				return nil, err
			}
			parents[len(parents)-1].rect = pn.mbr()
			group := append(moved, entries[lo:]...)
			pe, err := t.newNode(level, group)
			if err != nil {
				return nil, err
			}
			parents = append(parents, pe)
			break
		}
		group := make([]entry, hi-lo)
		copy(group, entries[lo:hi])
		pe, err := t.newNode(level, group)
		if err != nil {
			return nil, err
		}
		parents = append(parents, pe)
	}
	return parents, nil
}

func (t *Tree) newNode(level uint16, entries []entry) (entry, error) {
	n := &node{level: level, entries: entries}
	var err error
	n.id, err = t.pf.Allocate()
	if err != nil {
		return entry{}, err
	}
	if err := t.writeNode(n); err != nil {
		return entry{}, err
	}
	return entry{rect: n.mbr(), ref: uint64(n.id)}, nil
}
