package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

// TestInsertDeleteChurnInvariants drives the tree through sustained
// insert/delete churn against a brute-force model, cross-checking after
// every batch:
//
//   - structural invariants (MBR containment, occupancy, uniform depth),
//   - Len() — the size counter must stay exact across delete-condense-
//     reinsert cycles,
//   - window and nearest-neighbor query results against the model,
//   - the page count — freed node pages must be reused by later splits, so
//     steady-state churn cannot grow the simulated file unboundedly.
func TestInsertDeleteChurnInvariants(t *testing.T) {
	// Small pages (fanout 6) force frequent splits and condensations.
	tr, err := New(Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	model := map[int64]geom.Point{}
	nextID := int64(0)

	randPoint := func() geom.Point {
		return geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	insertOne := func() {
		p := randPoint()
		if err := tr.InsertPoint(p, nextID); err != nil {
			t.Fatal(err)
		}
		model[nextID] = p
		nextID++
	}
	deleteOne := func() {
		if len(model) == 0 {
			return
		}
		ids := make([]int64, 0, len(model))
		for id := range model {
			ids = append(ids, id)
		}
		id := ids[rng.Intn(len(ids))]
		found, err := tr.Delete(geom.PointRect(model[id]), id)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("Delete(%d) found nothing, item is in the model", id)
		}
		delete(model, id)
	}
	check := func() {
		t.Helper()
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if tr.Len() != len(model) {
			t.Fatalf("Len = %d, model has %d", tr.Len(), len(model))
		}
		// Window query vs model.
		w := geom.R(rng.Float64()*800, rng.Float64()*800, 0, 0)
		w.MaxX = w.MinX + 100 + rng.Float64()*200
		w.MaxY = w.MinY + 100 + rng.Float64()*200
		got := map[int64]bool{}
		err := tr.SearchRect(w, func(it Item) bool {
			got[it.Data] = true
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		want := map[int64]bool{}
		for id, p := range model {
			if w.Contains(p) {
				want[id] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("window query: got %d items, want %d", len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("window query missing item %d", id)
			}
		}
		// k-NN vs model.
		if len(model) == 0 {
			return
		}
		q := randPoint()
		k := 5
		if k > len(model) {
			k = len(model)
		}
		nns, err := tr.NearestK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		dists := make([]float64, 0, len(model))
		for _, p := range model {
			dists = append(dists, q.Dist(p))
		}
		sort.Float64s(dists)
		for i, nb := range nns {
			if math.Abs(nb.Dist-dists[i]) > 1e-9 {
				t.Fatalf("NN %d: dist %v, brute force %v", i, nb.Dist, dists[i])
			}
		}
	}

	// Phase 1: grow to ~400 items.
	for i := 0; i < 600; i++ {
		if rng.Float64() < 0.75 {
			insertOne()
		} else {
			deleteOne()
		}
		if i%50 == 49 {
			check()
		}
	}
	// Phase 2: steady-state churn. The page count at the start of the phase
	// bounds the file for its whole duration (plus slack for split jitter):
	// deletes free node pages into the free list and inserts must reuse them.
	steadyPages := tr.PageFile().NumPages()
	for i := 0; i < 1500; i++ {
		if rng.Float64() < 0.5 && len(model) > 0 {
			deleteOne()
		} else {
			insertOne()
		}
		if n := tr.PageFile().NumPages(); n > steadyPages+steadyPages/4+4 {
			t.Fatalf("op %d: page count grew from %d to %d under steady churn — freed pages are not being reused", i, steadyPages, n)
		}
		if i%100 == 99 {
			check()
		}
	}
	// Phase 3: drain. The tree must shrink back to a single root page.
	for id, p := range model {
		found, err := tr.Delete(geom.PointRect(p), id)
		if err != nil || !found {
			t.Fatalf("drain Delete(%d) = %v, %v", id, found, err)
		}
		delete(model, id)
	}
	check()
	if tr.Len() != 0 {
		t.Fatalf("drained Len = %d", tr.Len())
	}
	if n := tr.PageFile().NumPages(); n != 1 {
		t.Fatalf("drained tree holds %d pages, want 1 (root only)", n)
	}
	// The drained tree must accept a fresh working set again.
	for i := 0; i < 50; i++ {
		insertOne()
	}
	check()
}
