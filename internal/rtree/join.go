package rtree

import (
	"sort"

	"repro/internal/pagefile"
)

// JoinDistance performs the e-distance join of [BKS93]: it reports every
// pair of items (a from ta, b from tb) whose rectangles are within Euclidean
// distance e of each other, by traversing the two trees synchronously and
// following only entry pairs with mindist <= e. Within each node pair the
// candidate entries are matched with a plane sweep along x, as in the
// original algorithm. The callback returns false to stop early.
func JoinDistance(ta, tb *Tree, e float64, fn func(a, b Item) bool) error {
	_, err := joinNodes(ta, tb, ta.root, tb.root, e, fn)
	return err
}

type sweepEntry struct {
	ent  entry
	from int // 0 = left tree, 1 = right tree
}

func joinNodes(ta, tb *Tree, pa, pb pagefile.PageID, e float64, fn func(a, b Item) bool) (bool, error) {
	na, err := ta.readNode(pa)
	if err != nil {
		return false, err
	}
	nb, err := tb.readNode(pb)
	if err != nil {
		return false, err
	}
	switch {
	case na.level > nb.level:
		// Descend the deeper tree only.
		for _, ea := range na.entries {
			if ea.rect.MinDistRect(nb.mbr()) > e {
				continue
			}
			cont, err := joinNodes(ta, tb, pagefile.PageID(ea.ref), pb, e, fn)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	case nb.level > na.level:
		for _, eb := range nb.entries {
			if eb.rect.MinDistRect(na.mbr()) > e {
				continue
			}
			cont, err := joinNodes(ta, tb, pa, pagefile.PageID(eb.ref), e, fn)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	// Equal levels: sweep both entry lists along x.
	pairs := sweepPairs(na.entries, nb.entries, e)
	if na.isLeaf() {
		for _, pr := range pairs {
			if !fn(pr[0].item(), pr[1].item()) {
				return false, nil
			}
		}
		return true, nil
	}
	for _, pr := range pairs {
		cont, err := joinNodes(ta, tb, pagefile.PageID(pr[0].ref), pagefile.PageID(pr[1].ref), e, fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// sweepPairs returns the entry pairs (a, b) with mindist(a, b) <= e using a
// forward plane sweep over the union of both entry lists sorted by MinX.
func sweepPairs(as, bs []entry, e float64) [][2]entry {
	all := make([]sweepEntry, 0, len(as)+len(bs))
	for _, a := range as {
		all = append(all, sweepEntry{ent: a, from: 0})
	}
	for _, b := range bs {
		all = append(all, sweepEntry{ent: b, from: 1})
	}
	sort.SliceStable(all, func(i, j int) bool {
		return all[i].ent.rect.MinX < all[j].ent.rect.MinX
	})
	var out [][2]entry
	for i, s := range all {
		limit := s.ent.rect.MaxX + e
		for j := i + 1; j < len(all) && all[j].ent.rect.MinX <= limit; j++ {
			o := all[j]
			if o.from == s.from {
				continue
			}
			if s.ent.rect.MinDistRect(o.ent.rect) > e {
				continue
			}
			if s.from == 0 {
				out = append(out, [2]entry{s.ent, o.ent})
			} else {
				out = append(out, [2]entry{o.ent, s.ent})
			}
		}
	}
	return out
}
