package rtree

import (
	"repro/internal/geom"
	"repro/internal/pagefile"
)

// SearchRect reports every item whose rectangle intersects r, in no
// particular order. The callback returns false to stop the search early.
func (t *Tree) SearchRect(r geom.Rect, fn func(Item) bool) error {
	_, err := t.searchRect(t.root, r, fn)
	return err
}

func (t *Tree) searchRect(id pagefile.PageID, r geom.Rect, fn func(Item) bool) (bool, error) {
	n, err := t.readNode(id)
	if err != nil {
		return false, err
	}
	if n.isLeaf() {
		for _, e := range n.entries {
			if e.rect.Intersects(r) {
				if !fn(e.item()) {
					return false, nil
				}
			}
		}
		return true, nil
	}
	// readNode copies entries out of the page buffer, so recursing while
	// iterating is safe even though the buffer frame may be evicted.
	for _, e := range n.entries {
		if e.rect.Intersects(r) {
			cont, err := t.searchRect(pagefile.PageID(e.ref), r, fn)
			if err != nil || !cont {
				return cont, err
			}
		}
	}
	return true, nil
}

// SearchCircle reports every item whose rectangle is within the given
// Euclidean distance of center (mindist <= radius). For point items this is
// the circular range query of Section 3; for rectangle items (obstacle MBRs)
// it is the filter step, with polygon refinement left to the caller.
func (t *Tree) SearchCircle(center geom.Point, radius float64, fn func(Item) bool) error {
	_, err := t.searchCircle(t.root, center, radius, fn)
	return err
}

func (t *Tree) searchCircle(id pagefile.PageID, c geom.Point, radius float64, fn func(Item) bool) (bool, error) {
	n, err := t.readNode(id)
	if err != nil {
		return false, err
	}
	if n.isLeaf() {
		for _, e := range n.entries {
			if e.rect.MinDist(c) <= radius {
				if !fn(e.item()) {
					return false, nil
				}
			}
		}
		return true, nil
	}
	for _, e := range n.entries {
		if e.rect.MinDist(c) <= radius {
			cont, err := t.searchCircle(pagefile.PageID(e.ref), c, radius, fn)
			if err != nil || !cont {
				return cont, err
			}
		}
	}
	return true, nil
}

// All returns every item in the tree (test and tooling helper).
func (t *Tree) All() ([]Item, error) {
	var items []Item
	err := t.SearchRect(geom.R(-inf, -inf, inf, inf), func(it Item) bool {
		items = append(items, it)
		return true
	})
	return items, err
}
