package rtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/pagefile"
)

func TestNodeSerializationRoundTrip(t *testing.T) {
	tr, err := New(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	n := &node{level: 3, entries: []entry{
		{rect: geom.R(1.5, -2.25, 3.75, 4.125), ref: 42},
		{rect: geom.R(-1e9, -1e9, 1e9, 1e9), ref: ^uint64(0) >> 1},
	}}
	var errAlloc error
	n.id, errAlloc = tr.pf.Allocate()
	if errAlloc != nil {
		t.Fatal(errAlloc)
	}
	if err := tr.writeNode(n); err != nil {
		t.Fatal(err)
	}
	back, err := tr.readNode(n.id)
	if err != nil {
		t.Fatal(err)
	}
	if back.level != n.level || len(back.entries) != len(n.entries) {
		t.Fatalf("header mismatch: %+v", back)
	}
	for i := range n.entries {
		if back.entries[i] != n.entries[i] {
			t.Errorf("entry %d: %+v != %+v", i, back.entries[i], n.entries[i])
		}
	}
}

func TestWriteNodeRejectsOverflow(t *testing.T) {
	tr, err := New(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	n := &node{id: 1, entries: make([]entry, tr.maxE+1)}
	for i := range n.entries {
		n.entries[i].rect = geom.R(0, 0, 1, 1)
	}
	if err := tr.writeNode(n); err == nil {
		t.Error("want overflow error")
	}
}

func TestReadNodeCorruptCount(t *testing.T) {
	tr, err := New(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	id, _ := tr.pf.Allocate()
	page := make([]byte, tr.pf.PageSize())
	page[2] = 0xFF // count = huge
	page[3] = 0xFF
	if err := tr.pf.Write(id, page); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.readNode(id); err == nil {
		t.Error("want corruption error")
	}
}

func TestHeightGrowthAndShrink(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	tr, err := New(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	heights := []int{tr.Height()}
	pts := make([]geom.Point, 200)
	for i := range pts {
		pts[i] = randPoint(rng)
		if err := tr.InsertPoint(pts[i], int64(i)); err != nil {
			t.Fatal(err)
		}
		if h := tr.Height(); h != heights[len(heights)-1] {
			heights = append(heights, h)
		}
	}
	// Height grew monotonically by 1.
	for i := 1; i < len(heights); i++ {
		if heights[i] != heights[i-1]+1 {
			t.Fatalf("height jumped: %v", heights)
		}
	}
	if tr.Height() < 3 {
		t.Fatalf("tree too shallow: %d", tr.Height())
	}
	// Deleting everything shrinks back to a single leaf.
	for i := range pts {
		if found, err := tr.Delete(geom.PointRect(pts[i]), int64(i)); err != nil || !found {
			t.Fatalf("delete %d: %v %v", i, found, err)
		}
	}
	if tr.Height() != 1 || tr.Len() != 0 {
		t.Errorf("after drain: height %d len %d", tr.Height(), tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSearchCircleZeroRadius(t *testing.T) {
	tr, err := New(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	p := geom.Pt(5, 5)
	if err := tr.InsertPoint(p, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.InsertPoint(geom.Pt(6, 5), 2); err != nil {
		t.Fatal(err)
	}
	var got []int64
	if err := tr.SearchCircle(p, 0, func(it Item) bool {
		got = append(got, it.Data)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("zero-radius circle got %v", got)
	}
}

func TestJoinWithEmptyTree(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	ta, _ := buildRandomPointTree(t, rng, 50, smallOpts())
	tb, err := New(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := JoinDistance(ta, tb, 1000, func(a, b Item) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("join with empty tree found %d pairs", count)
	}
}

func TestNearestIteratorRectItems(t *testing.T) {
	// NN over rectangle items (obstacle MBRs) orders by mindist.
	tr, err := New(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	rects := []geom.Rect{
		geom.R(10, 0, 12, 2),  // mindist to origin ~10
		geom.R(3, 4, 5, 6),    // mindist 5
		geom.R(-1, -1, 1, 1),  // contains origin: 0
		geom.R(0, 20, 30, 25), // mindist 20
	}
	for i, r := range rects {
		if err := tr.Insert(r, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	it := tr.NearestIterator(geom.Pt(0, 0))
	wantOrder := []int64{2, 1, 0, 3}
	for i, want := range wantOrder {
		nb, ok := it.Next()
		if !ok {
			t.Fatalf("exhausted at %d", i)
		}
		if nb.Item.Data != want {
			t.Fatalf("rank %d: got %d want %d", i, nb.Item.Data, want)
		}
	}
}

func TestQuickInsertDeleteModel(t *testing.T) {
	// Property: after an arbitrary interleaving of inserts and deletes, the
	// tree agrees with a map model on full contents.
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(63))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := New(smallOpts())
		if err != nil {
			return false
		}
		model := map[int64]geom.Point{}
		next := int64(0)
		for op := 0; op < 300; op++ {
			if rng.Intn(3) != 0 || len(model) == 0 {
				p := randPoint(rng)
				if err := tr.InsertPoint(p, next); err != nil {
					return false
				}
				model[next] = p
				next++
			} else {
				for id, p := range model { // random-ish map pick
					found, err := tr.Delete(geom.PointRect(p), id)
					if err != nil || !found {
						return false
					}
					delete(model, id)
					break
				}
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		items, err := tr.All()
		if err != nil || len(items) != len(model) {
			return false
		}
		for _, it := range items {
			p, ok := model[it.Data]
			if !ok || p.Dist(it.Rect.Center()) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestBoundsAfterMutations(t *testing.T) {
	tr, err := New(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	pts := []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 50}, {X: -20, Y: 80}}
	for i, p := range pts {
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	b, err := tr.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	if b != geom.R(-20, 0, 100, 80) {
		t.Errorf("bounds = %v", b)
	}
	if _, err := tr.Delete(geom.PointRect(pts[2]), 2); err != nil {
		t.Fatal(err)
	}
	b, err = tr.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	if !b.ContainsRect(geom.R(0, 0, 100, 50)) {
		t.Errorf("bounds after delete = %v", b)
	}
}

func TestStatsExposedThroughPageFile(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	tr, _ := buildRandomPointTree(t, rng, 200, smallOpts())
	pf := tr.PageFile()
	if pf.NumPages() == 0 {
		t.Fatal("no pages allocated")
	}
	pf.ResetStats()
	if err := tr.SearchRect(geom.R(0, 0, 500, 500), func(Item) bool { return true }); err != nil {
		t.Fatal(err)
	}
	st := pf.Stats()
	if st.LogicalReads == 0 {
		t.Error("no logical reads recorded")
	}
	if st.LogicalReads != st.BufferHits+st.PhysicalReads {
		t.Errorf("logical != hits + physical: %+v", st)
	}
}

func TestMinDistConsistencyNNvsScan(t *testing.T) {
	// The NN iterator's first result equals the linear-scan minimum even
	// with degenerate (duplicate, collinear) points.
	tr, err := New(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	pts := []geom.Point{{X: 1, Y: 1}, {X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3}}
	for i, p := range pts {
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	nb, ok := tr.NearestIterator(geom.Pt(0, 0)).Next()
	if !ok {
		t.Fatal("no result")
	}
	if math.Abs(nb.Dist-math.Sqrt2) > 1e-12 {
		t.Errorf("first NN dist = %v", nb.Dist)
	}
}

// faultyStorage fails all reads after a threshold, to check error paths in
// traversals.
type faultyStorage struct {
	pagefile.Storage
	reads, failAfter int
}

func (fs *faultyStorage) ReadPage(id pagefile.PageID, dst []byte) error {
	fs.reads++
	if fs.reads > fs.failAfter {
		return pagefile.ErrPageNotFound
	}
	return fs.Storage.ReadPage(id, dst)
}

func TestTraversalErrorPropagation(t *testing.T) {
	fs := &faultyStorage{Storage: pagefile.NewMemStorage(4 + 4*entrySize), failAfter: 1 << 30}
	opts := smallOpts()
	opts.Storage = fs
	opts.BufferPages = 1 // force physical reads
	tr, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(65))
	for i := 0; i < 200; i++ {
		if err := tr.InsertPoint(randPoint(rng), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	fs.failAfter = fs.reads // every further physical read fails
	if err := tr.SearchRect(geom.R(0, 0, 1000, 1000), func(Item) bool { return true }); err == nil {
		t.Error("SearchRect should surface I/O errors")
	}
	it := tr.NearestIterator(geom.Pt(500, 500))
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	if it.Err() == nil {
		t.Error("NN iterator should surface I/O errors")
	}
}
