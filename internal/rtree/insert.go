package rtree

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/pagefile"
)

// Insert adds an item with the given bounding rectangle using the R*
// insertion algorithm (ChooseSubtree, forced reinsert, topological split).
func (t *Tree) Insert(r geom.Rect, data int64) error {
	if r.IsEmpty() {
		return fmt.Errorf("rtree: insert of empty rectangle")
	}
	for k := range t.reinsLvl {
		delete(t.reinsLvl, k)
	}
	t.pending = t.pending[:0]
	if err := t.insertFromRoot(entry{rect: r, ref: uint64(data)}, 0); err != nil {
		return err
	}
	if err := t.drainPending(); err != nil {
		return err
	}
	t.size++
	return nil
}

// InsertPoint adds a point item.
func (t *Tree) InsertPoint(p geom.Point, data int64) error {
	return t.Insert(geom.PointRect(p), data)
}

// drainPending re-inserts entries removed by forced reinsertion (or by
// delete-condensation). Entries are processed in the order produced; the
// queue can grow while draining (a reinsert may overflow another node).
func (t *Tree) drainPending() error {
	for len(t.pending) > 0 {
		p := t.pending[0]
		t.pending = t.pending[1:]
		if err := t.insertFromRoot(p.e, p.level); err != nil {
			return err
		}
	}
	return nil
}

// insertFromRoot descends from the root and inserts e at the given level,
// growing the tree if the root splits.
func (t *Tree) insertFromRoot(e entry, level uint16) error {
	rootNode, err := t.readNode(t.root)
	if err != nil {
		return err
	}
	split, err := t.insertInto(rootNode, e, level)
	if err != nil {
		return err
	}
	if split == nil {
		t.root = rootNode.id // COW may have relocated the root
		return nil
	}
	// Root split: create a new root one level up.
	newRoot := &node{level: rootNode.level + 1}
	newRoot.id, err = t.allocPage()
	if err != nil {
		return err
	}
	newRoot.entries = []entry{
		{rect: rootNode.mbr(), ref: uint64(rootNode.id)},
		*split,
	}
	if err := t.writeNode(newRoot); err != nil {
		return err
	}
	t.root = newRoot.id
	t.height++
	return nil
}

// insertInto inserts e at the target level within the subtree rooted at n.
// It writes every modified node and returns the entry of a new sibling when
// n was split.
func (t *Tree) insertInto(n *node, e entry, level uint16) (*entry, error) {
	if n.level == level {
		n.entries = append(n.entries, e)
		return t.overflowTreatment(n)
	}
	idx := t.chooseSubtree(n, e.rect)
	child, err := t.readNode(pagefile.PageID(n.entries[idx].ref))
	if err != nil {
		return nil, err
	}
	split, err := t.insertInto(child, e, level)
	if err != nil {
		return nil, err
	}
	n.entries[idx] = entry{rect: child.mbr(), ref: uint64(child.id)}
	if split != nil {
		n.entries = append(n.entries, *split)
	}
	return t.overflowTreatment(n)
}

// chooseSubtree implements the R* descent heuristic: for nodes pointing to
// leaves, minimize overlap enlargement (ties: area enlargement, then area);
// otherwise minimize area enlargement (ties: area).
func (t *Tree) chooseSubtree(n *node, r geom.Rect) int {
	best := 0
	if n.level == 1 {
		bestOverlap, bestEnl, bestArea := inf, inf, inf
		for i, e := range n.entries {
			enlarged := e.rect.Union(r)
			var dOverlap float64
			for j, f := range n.entries {
				if j == i {
					continue
				}
				dOverlap += enlarged.OverlapArea(f.rect) - e.rect.OverlapArea(f.rect)
			}
			enl := enlarged.Area() - e.rect.Area()
			area := e.rect.Area()
			if dOverlap < bestOverlap ||
				(dOverlap == bestOverlap && (enl < bestEnl ||
					(enl == bestEnl && area < bestArea))) {
				best, bestOverlap, bestEnl, bestArea = i, dOverlap, enl, area
			}
		}
		return best
	}
	bestEnl, bestArea := inf, inf
	for i, e := range n.entries {
		enl := e.rect.Union(r).Area() - e.rect.Area()
		area := e.rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

const inf = 1e308

// overflowTreatment writes n back, performing forced reinsertion on the
// first overflow of each level and splitting otherwise.
func (t *Tree) overflowTreatment(n *node) (*entry, error) {
	if len(n.entries) <= t.maxE {
		return nil, t.writeNode(n)
	}
	isRoot := n.id == t.root
	if !isRoot && !t.reinsLvl[n.level] {
		t.reinsLvl[n.level] = true
		t.forceReinsert(n)
		return nil, t.writeNode(n)
	}
	return t.split(n)
}

// forceReinsert removes the ReinsertFraction of entries whose centers are
// farthest from the node MBR center and queues them for reinsertion.
func (t *Tree) forceReinsert(n *node) {
	p := int(float64(len(n.entries)) * t.opts.ReinsertFraction)
	if p < 1 {
		p = 1
	}
	if p > len(n.entries)-t.minE {
		p = len(n.entries) - t.minE
	}
	c := n.mbr().Center()
	sort.SliceStable(n.entries, func(i, j int) bool {
		return n.entries[i].rect.Center().Dist2(c) > n.entries[j].rect.Center().Dist2(c)
	})
	removed := make([]entry, p)
	copy(removed, n.entries[:p])
	n.entries = append(n.entries[:0], n.entries[p:]...)
	// Close reinsert: re-insert entries closest-first (reverse of removal
	// order, which sorted farthest-first).
	for i := len(removed) - 1; i >= 0; i-- {
		t.pending = append(t.pending, pendingInsert{e: removed[i], level: n.level})
	}
}

// split performs the R* topological split of an overflowing node, keeping
// one group in n and returning the parent entry for the new sibling.
func (t *Tree) split(n *node) (*entry, error) {
	group1, group2 := t.chooseSplit(n.entries)
	n.entries = group1
	sib := &node{level: n.level, entries: group2}
	var err error
	sib.id, err = t.allocPage()
	if err != nil {
		return nil, err
	}
	if err := t.writeNode(n); err != nil {
		return nil, err
	}
	if err := t.writeNode(sib); err != nil {
		return nil, err
	}
	return &entry{rect: sib.mbr(), ref: uint64(sib.id)}, nil
}

// chooseSplit implements ChooseSplitAxis + ChooseSplitIndex of the R*-tree:
// for each axis, sort entries by lower then by upper rectangle bound and sum
// the margins of all legal distributions; pick the axis with the minimum sum,
// then the distribution with minimum overlap (ties: minimum total area).
func (t *Tree) chooseSplit(entries []entry) (g1, g2 []entry) {
	type sorted struct {
		es     []entry
		margin float64
	}
	candidates := make([]sorted, 0, 4)
	for axis := 0; axis < 2; axis++ {
		for _, byUpper := range [2]bool{false, true} {
			es := make([]entry, len(entries))
			copy(es, entries)
			sortEntries(es, axis, byUpper)
			candidates = append(candidates, sorted{es: es, margin: t.marginSum(es)})
		}
	}
	// Pick the axis (pair of candidates) with minimal margin sum.
	bestAxis := 0
	if candidates[0].margin+candidates[1].margin > candidates[2].margin+candidates[3].margin {
		bestAxis = 1
	}
	bestOverlap, bestArea := inf, inf
	for c := 2 * bestAxis; c < 2*bestAxis+2; c++ {
		es := candidates[c].es
		for k := 0; k <= len(es)-2*t.minE; k++ {
			cut := t.minE + k
			r1 := mbrOf(es[:cut])
			r2 := mbrOf(es[cut:])
			overlap := r1.OverlapArea(r2)
			area := r1.Area() + r2.Area()
			if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
				bestOverlap, bestArea = overlap, area
				g1 = append(g1[:0], es[:cut]...)
				g2 = append(g2[:0], es[cut:]...)
			}
		}
	}
	return g1, g2
}

func sortEntries(es []entry, axis int, byUpper bool) {
	sort.SliceStable(es, func(i, j int) bool {
		a, b := es[i].rect, es[j].rect
		var la, lb, ua, ub float64
		if axis == 0 {
			la, lb, ua, ub = a.MinX, b.MinX, a.MaxX, b.MaxX
		} else {
			la, lb, ua, ub = a.MinY, b.MinY, a.MaxY, b.MaxY
		}
		if byUpper {
			if ua != ub {
				return ua < ub
			}
			return la < lb
		}
		if la != lb {
			return la < lb
		}
		return ua < ub
	})
}

func (t *Tree) marginSum(es []entry) float64 {
	var sum float64
	for k := 0; k <= len(es)-2*t.minE; k++ {
		cut := t.minE + k
		sum += mbrOf(es[:cut]).Margin() + mbrOf(es[cut:]).Margin()
	}
	return sum
}

func mbrOf(es []entry) geom.Rect {
	r := geom.EmptyRect()
	for _, e := range es {
		r = r.Union(e.rect)
	}
	return r
}
