package rtree

import (
	"repro/internal/geom"
	"repro/internal/pagefile"
)

// Delete removes the item with exactly the given rectangle and data id.
// It reports whether an item was found. Underflowing nodes are dissolved and
// their entries reinserted (the classic condense-tree step), so obstacle and
// entity datasets can be updated in place — the motivation the paper gives
// for building visibility graphs on-line rather than materializing them.
func (t *Tree) Delete(r geom.Rect, data int64) (bool, error) {
	t.pending = t.pending[:0]
	for k := range t.reinsLvl {
		delete(t.reinsLvl, k)
	}
	rootNode, err := t.readNode(t.root)
	if err != nil {
		return false, err
	}
	found, err := t.deleteFrom(rootNode, r, data)
	if err != nil || !found {
		return found, err
	}
	t.root = rootNode.id // COW may have relocated the root
	t.size--
	// Reinsert orphans from dissolved nodes. Mark every level as already
	// reinserted so overflow during condensation splits instead of cascading
	// further reinsertion.
	for lvl := uint16(0); int(lvl) < t.height; lvl++ {
		t.reinsLvl[lvl] = true
	}
	if err := t.drainPending(); err != nil {
		return true, err
	}
	// Shrink the root while it is internal with a single child.
	for t.height > 1 {
		rootNode, err := t.readNode(t.root)
		if err != nil {
			return true, err
		}
		if len(rootNode.entries) != 1 || rootNode.isLeaf() {
			break
		}
		child := pagefile.PageID(rootNode.entries[0].ref)
		if err := t.freeNode(t.root); err != nil {
			return true, err
		}
		t.root = child
		t.height--
	}
	return true, nil
}

// deleteFrom removes (r, data) from the subtree rooted at n, condensing
// underflowing children. Modified nodes are written before returning.
func (t *Tree) deleteFrom(n *node, r geom.Rect, data int64) (bool, error) {
	if n.isLeaf() {
		for i, e := range n.entries {
			if e.ref == uint64(data) && rectsEqual(e.rect, r) {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				return true, t.writeNode(n)
			}
		}
		return false, nil
	}
	for i := range n.entries {
		if !n.entries[i].rect.ContainsRect(r) {
			continue
		}
		child, err := t.readNode(pagefile.PageID(n.entries[i].ref))
		if err != nil {
			return false, err
		}
		found, err := t.deleteFrom(child, r, data)
		if err != nil {
			return false, err
		}
		if !found {
			continue
		}
		if len(child.entries) < t.minE {
			// Dissolve the child: queue its entries for reinsertion at
			// their level and drop it from n.
			for _, ce := range child.entries {
				t.pending = append(t.pending, pendingInsert{e: ce, level: child.level})
			}
			if err := t.freeNode(child.id); err != nil {
				return false, err
			}
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
		} else {
			n.entries[i] = entry{rect: child.mbr(), ref: uint64(child.id)}
		}
		return true, t.writeNode(n)
	}
	return false, nil
}

func rectsEqual(a, b geom.Rect) bool {
	return a.MinX == b.MinX && a.MinY == b.MinY && a.MaxX == b.MaxX && a.MaxY == b.MaxY
}
