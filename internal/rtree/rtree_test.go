package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

// smallOpts forces tiny nodes (fanout 4) so even modest datasets produce
// deep trees, exercising splits, reinserts and multi-level traversal.
func smallOpts() Options {
	return Options{PageSize: 4 + 4*entrySize, BufferPages: 16}
}

func randPoint(rng *rand.Rand) geom.Point {
	return geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
}

func buildRandomPointTree(t *testing.T, rng *rand.Rand, n int, opts Options) (*Tree, []geom.Point) {
	t.Helper()
	tr, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = randPoint(rng)
		if err := tr.InsertPoint(pts[i], int64(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	return tr, pts
}

func TestEmptyTree(t *testing.T) {
	tr, err := New(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Errorf("empty tree: len %d height %d", tr.Len(), tr.Height())
	}
	b, err := tr.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	if !b.IsEmpty() {
		t.Errorf("empty bounds = %v", b)
	}
	count := 0
	if err := tr.SearchRect(geom.R(0, 0, 1000, 1000), func(Item) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("found %d in empty tree", count)
	}
	if _, ok := tr.NearestIterator(geom.Pt(0, 0)).Next(); ok {
		t.Error("NN in empty tree")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInsertInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr, _ := buildRandomPointTree(t, rng, 500, smallOpts())
	if tr.Len() != 500 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Height() < 3 {
		t.Errorf("expected deep tree, height %d", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertRejectsEmptyRect(t *testing.T) {
	tr, _ := New(smallOpts())
	if err := tr.Insert(geom.EmptyRect(), 1); err == nil {
		t.Error("want error for empty rect")
	}
}

func TestNewRejectsTinyPage(t *testing.T) {
	if _, err := New(Options{PageSize: 64}); err == nil {
		t.Error("want error for page too small")
	}
}

func TestSearchRectMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr, pts := buildRandomPointTree(t, rng, 400, smallOpts())
	for trial := 0; trial < 50; trial++ {
		lo := randPoint(rng)
		r := geom.R(lo.X, lo.Y, lo.X+rng.Float64()*300, lo.Y+rng.Float64()*300)
		want := map[int64]bool{}
		for i, p := range pts {
			if r.Contains(p) {
				want[int64(i)] = true
			}
		}
		got := map[int64]bool{}
		if err := tr.SearchRect(r, func(it Item) bool { got[it.Data] = true; return true }); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d items, want %d", trial, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d: missing item %d", trial, id)
			}
		}
	}
}

func TestSearchCircleMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr, pts := buildRandomPointTree(t, rng, 400, smallOpts())
	for trial := 0; trial < 50; trial++ {
		c := randPoint(rng)
		radius := rng.Float64() * 200
		want := map[int64]bool{}
		for i, p := range pts {
			if c.Dist(p) <= radius {
				want[int64(i)] = true
			}
		}
		got := map[int64]bool{}
		if err := tr.SearchCircle(c, radius, func(it Item) bool { got[it.Data] = true; return true }); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr, _ := buildRandomPointTree(t, rng, 100, smallOpts())
	count := 0
	if err := tr.SearchRect(geom.R(0, 0, 1000, 1000), func(Item) bool {
		count++
		return count < 5
	}); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("early stop at %d, want 5", count)
	}
}

func TestNearestIteratorOrderAndCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr, pts := buildRandomPointTree(t, rng, 300, smallOpts())
	q := geom.Pt(500, 500)
	it := tr.NearestIterator(q)
	var dists []float64
	seen := map[int64]bool{}
	for {
		nb, ok := it.Next()
		if !ok {
			break
		}
		dists = append(dists, nb.Dist)
		seen[nb.Item.Data] = true
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if len(dists) != len(pts) {
		t.Fatalf("iterator returned %d items, want %d", len(dists), len(pts))
	}
	if !sort.Float64sAreSorted(dists) {
		t.Error("NN distances not ascending")
	}
	// Matches brute force.
	want := make([]float64, len(pts))
	for i, p := range pts {
		want[i] = q.Dist(p)
	}
	sort.Float64s(want)
	for i := range want {
		if math.Abs(want[i]-dists[i]) > 1e-9 {
			t.Fatalf("rank %d: dist %v, want %v", i, dists[i], want[i])
		}
	}
}

func TestNearestK(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr, pts := buildRandomPointTree(t, rng, 200, smallOpts())
	q := randPoint(rng)
	nbs, err := tr.NearestK(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbs) != 10 {
		t.Fatalf("got %d neighbors", len(nbs))
	}
	// The 10th NN distance must equal the brute-force 10th smallest.
	d := make([]float64, len(pts))
	for i, p := range pts {
		d[i] = q.Dist(p)
	}
	sort.Float64s(d)
	if math.Abs(nbs[9].Dist-d[9]) > 1e-9 {
		t.Errorf("10th NN = %v, want %v", nbs[9].Dist, d[9])
	}
	// k larger than the tree.
	all, err := tr.NearestK(q, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(pts) {
		t.Errorf("NearestK(1000) = %d items", len(all))
	}
}

func TestDeleteMaintainsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr, pts := buildRandomPointTree(t, rng, 300, smallOpts())
	perm := rng.Perm(len(pts))
	for i, idx := range perm[:200] {
		found, err := tr.Delete(geom.PointRect(pts[idx]), int64(idx))
		if err != nil {
			t.Fatalf("delete %d: %v", idx, err)
		}
		if !found {
			t.Fatalf("delete %d: not found", idx)
		}
		if i%40 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", i+1, err)
			}
		}
	}
	if tr.Len() != 100 {
		t.Errorf("Len = %d, want 100", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Remaining points still findable; deleted ones gone.
	deleted := map[int]bool{}
	for _, idx := range perm[:200] {
		deleted[idx] = true
	}
	for i, p := range pts {
		hit := false
		if err := tr.SearchRect(geom.PointRect(p), func(it Item) bool {
			if it.Data == int64(i) {
				hit = true
				return false
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if hit == deleted[i] {
			t.Fatalf("point %d: hit=%v deleted=%v", i, hit, deleted[i])
		}
	}
	// Delete everything.
	for i := range pts {
		if !deleted[i] {
			if found, err := tr.Delete(geom.PointRect(pts[i]), int64(i)); err != nil || !found {
				t.Fatalf("final delete %d: %v %v", i, found, err)
			}
		}
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Errorf("after deleting all: len %d height %d", tr.Len(), tr.Height())
	}
}

func TestDeleteNotFound(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr, pts := buildRandomPointTree(t, rng, 50, smallOpts())
	found, err := tr.Delete(geom.PointRect(geom.Pt(-5, -5)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("deleted nonexistent point")
	}
	// Right rect, wrong id.
	found, err = tr.Delete(geom.PointRect(pts[0]), 9999)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("deleted with mismatched data id")
	}
	if tr.Len() != 50 {
		t.Errorf("Len changed to %d", tr.Len())
	}
}

func TestRectItems(t *testing.T) {
	// Non-point items (obstacle MBRs).
	rng := rand.New(rand.NewSource(9))
	tr, err := New(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	rects := make([]geom.Rect, 200)
	for i := range rects {
		p := randPoint(rng)
		rects[i] = geom.R(p.X, p.Y, p.X+rng.Float64()*50, p.Y+rng.Float64()*50)
		if err := tr.Insert(rects[i], int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		c := randPoint(rng)
		radius := rng.Float64() * 150
		want := 0
		for _, r := range rects {
			if r.MinDist(c) <= radius {
				want++
			}
		}
		got := 0
		if err := tr.SearchCircle(c, radius, func(Item) bool { got++; return true }); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: circle got %d want %d", trial, got, want)
		}
	}
}

func TestBulkLoadSTRAndHilbert(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	items := make([]Item, 1000)
	pts := make([]geom.Point, len(items))
	for i := range items {
		pts[i] = randPoint(rng)
		items[i] = PointItem(pts[i], int64(i))
	}
	for _, method := range []BulkLoadMethod{STR, Hilbert} {
		tr, err := BulkLoad(smallOpts(), items, method)
		if err != nil {
			t.Fatalf("method %d: %v", method, err)
		}
		if tr.Len() != len(items) {
			t.Fatalf("method %d: Len = %d", method, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("method %d: %v", method, err)
		}
		// Queries agree with linear scan.
		r := geom.R(200, 200, 600, 700)
		want := 0
		for _, p := range pts {
			if r.Contains(p) {
				want++
			}
		}
		got := 0
		if err := tr.SearchRect(r, func(Item) bool { got++; return true }); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("method %d: got %d want %d", method, got, want)
		}
		// Tree remains usable for subsequent inserts and deletes.
		if err := tr.InsertPoint(geom.Pt(1, 1), 5000); err != nil {
			t.Fatal(err)
		}
		if found, err := tr.Delete(geom.PointRect(pts[0]), 0); err != nil || !found {
			t.Fatalf("method %d: delete after bulk: %v %v", method, found, err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("method %d after update: %v", method, err)
		}
	}
}

func TestBulkLoadSmall(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 5, 9, 17} {
		items := make([]Item, n)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := range items {
			items[i] = PointItem(randPoint(rng), int64(i))
		}
		tr, err := BulkLoad(smallOpts(), items, STR)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBulkLoadRejectsEmptyRect(t *testing.T) {
	if _, err := BulkLoad(smallOpts(), []Item{{Rect: geom.EmptyRect()}}, STR); err == nil {
		t.Error("want error")
	}
}

func bruteJoin(pa, pb []geom.Point, e float64) map[[2]int64]bool {
	out := map[[2]int64]bool{}
	for i, a := range pa {
		for j, b := range pb {
			if a.Dist(b) <= e {
				out[[2]int64{int64(i), int64(j)}] = true
			}
		}
	}
	return out
}

func TestJoinDistanceMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ta, pa := buildRandomPointTree(t, rng, 250, smallOpts())
	tb, pb := buildRandomPointTree(t, rng, 180, smallOpts())
	for _, e := range []float64{0, 5, 25, 80} {
		want := bruteJoin(pa, pb, e)
		got := map[[2]int64]bool{}
		err := JoinDistance(ta, tb, e, func(a, b Item) bool {
			got[[2]int64{a.Data, b.Data}] = true
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("e=%v: got %d pairs, want %d", e, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("e=%v: missing pair %v", e, k)
			}
		}
	}
}

func TestJoinDifferentHeights(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ta, pa := buildRandomPointTree(t, rng, 500, smallOpts()) // deep
	tb, pb := buildRandomPointTree(t, rng, 6, smallOpts())   // shallow
	e := 100.0
	want := bruteJoin(pa, pb, e)
	got := 0
	err := JoinDistance(ta, tb, e, func(a, b Item) bool { got++; return true })
	if err != nil {
		t.Fatal(err)
	}
	if got != len(want) {
		t.Fatalf("got %d pairs, want %d", got, len(want))
	}
	// Symmetric call (tb deeper side handled too).
	got = 0
	if err := JoinDistance(tb, ta, e, func(a, b Item) bool { got++; return true }); err != nil {
		t.Fatal(err)
	}
	if got != len(want) {
		t.Fatalf("swapped: got %d pairs, want %d", got, len(want))
	}
}

func TestJoinEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ta, _ := buildRandomPointTree(t, rng, 100, smallOpts())
	tb, _ := buildRandomPointTree(t, rng, 100, smallOpts())
	count := 0
	err := JoinDistance(ta, tb, 500, func(a, b Item) bool {
		count++
		return count < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("early stop at %d", count)
	}
}

func TestClosestPairIterator(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	ta, pa := buildRandomPointTree(t, rng, 120, smallOpts())
	tb, pb := buildRandomPointTree(t, rng, 90, smallOpts())
	it, err := NewClosestPairIterator(ta, tb)
	if err != nil {
		t.Fatal(err)
	}
	var dists []float64
	n := 0
	prev := -1.0
	for {
		pr, ok := it.Next()
		if !ok {
			break
		}
		if pr.Dist < prev-1e-9 {
			t.Fatalf("pair %d: distance %v < previous %v", n, pr.Dist, prev)
		}
		prev = pr.Dist
		dists = append(dists, pr.Dist)
		n++
		if n >= 500 {
			break
		}
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	// Compare with brute-force sorted pair distances.
	var want []float64
	for _, a := range pa {
		for _, b := range pb {
			want = append(want, a.Dist(b))
		}
	}
	sort.Float64s(want)
	for i := range dists {
		if math.Abs(dists[i]-want[i]) > 1e-9 {
			t.Fatalf("rank %d: %v want %v", i, dists[i], want[i])
		}
	}
}

func TestClosestPairsK(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	ta, _ := buildRandomPointTree(t, rng, 60, smallOpts())
	tb, _ := buildRandomPointTree(t, rng, 60, smallOpts())
	pairs, err := ClosestPairs(ta, tb, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 16 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	// Empty side.
	empty, err := New(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	pairs, err = ClosestPairs(ta, empty, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Errorf("pairs with empty tree: %d", len(pairs))
	}
}

func TestPageAccessCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	items := make([]Item, 5000)
	for i := range items {
		items[i] = PointItem(randPoint(rng), int64(i))
	}
	tr, err := BulkLoad(Options{PageSize: 512, BufferPages: 8}, items, STR)
	if err != nil {
		t.Fatal(err)
	}
	// Small buffer: random queries must miss.
	if err := tr.PageFile().SetBufferPages(2); err != nil {
		t.Fatal(err)
	}
	tr.PageFile().ResetStats()
	for i := 0; i < 20; i++ {
		q := randPoint(rng)
		if err := tr.SearchCircle(q, 30, func(Item) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	small := tr.PageFile().Stats().PhysicalReads
	if small == 0 {
		t.Fatal("expected physical reads with tiny buffer")
	}
	// Buffer as large as the tree: repeated identical queries hit.
	if err := tr.PageFile().SetBufferPages(tr.PageFile().NumPages()); err != nil {
		t.Fatal(err)
	}
	q := geom.Pt(500, 500)
	if err := tr.SearchCircle(q, 30, func(Item) bool { return true }); err != nil {
		t.Fatal(err)
	}
	tr.PageFile().ResetStats()
	if err := tr.SearchCircle(q, 30, func(Item) bool { return true }); err != nil {
		t.Fatal(err)
	}
	st := tr.PageFile().Stats()
	if st.PhysicalReads != 0 {
		t.Errorf("warm repeat query had %d physical reads", st.PhysicalReads)
	}
	if st.BufferHits == 0 {
		t.Error("no buffer hits recorded")
	}
}

func TestInsertedTreeVsBulkLoadedAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	items := make([]Item, 600)
	for i := range items {
		items[i] = PointItem(randPoint(rng), int64(i))
	}
	bulk, err := BulkLoad(smallOpts(), items, STR)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := New(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if err := ins.Insert(it.Rect, it.Data); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 20; trial++ {
		q := randPoint(rng)
		a, err := bulk.NearestK(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ins.NearestK(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if math.Abs(a[i].Dist-b[i].Dist) > 1e-9 {
				t.Fatalf("trial %d rank %d: bulk %v insert %v", trial, i, a[i].Dist, b[i].Dist)
			}
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	tr, err := New(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	p := geom.Pt(5, 5)
	for i := 0; i < 50; i++ {
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := tr.SearchRect(geom.PointRect(p), func(Item) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Errorf("found %d duplicates, want 50", count)
	}
	for i := 0; i < 50; i++ {
		if found, err := tr.Delete(geom.PointRect(p), int64(i)); err != nil || !found {
			t.Fatalf("delete dup %d: %v %v", i, found, err)
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
}
