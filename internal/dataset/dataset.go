// Package dataset generates the synthetic datasets of the experimental
// evaluation. The paper uses the MBRs of 131,461 Los Angeles street segments
// [Web] as obstacles; that server is long gone, so this package provides a
// street-map generator reproducing the properties the experiments depend
// on: (i) thin, axis-parallel rectangles that obstruct long sight lines,
// (ii) a highly non-uniform spatial distribution with dense "downtown"
// hot-spots, and (iii) entity/query points correlated with the obstacle
// distribution (points lie on obstacle boundaries but never in interiors,
// exactly as the paper states).
//
// Obstacles are pairwise disjoint by construction: streets are laid on a
// jittered grid and each street is cut into per-block segments with gaps at
// crossings, so generation is O(n log n) with no rejection sampling.
package dataset

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/geom"
)

// Config parameterizes generation. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// Seed drives all randomness; equal configs generate equal datasets.
	Seed int64
	// Universe is the side length of the square data space.
	Universe float64
	// Obstacles is the number of street-segment MBRs to produce.
	Obstacles int
	// Hotspots is the number of high-density centers (downtowns).
	Hotspots int
	// HotspotFraction is the share of streets attracted to hot-spots.
	HotspotFraction float64
	// MaxRunBlocks > 1 lets street segments run unbroken through crossings
	// they "own" (geometric run lengths, mean ~1.8 blocks). Longer segments
	// form longer barriers, which is what makes obstructed detours grow
	// with the query range as in the paper's street data. 1 cuts every
	// street at every crossing.
	MaxRunBlocks int
}

// DefaultConfig mirrors the paper's setup at a configurable cardinality:
// |O| = 131,461 in the paper; callers scale it down for quick runs.
func DefaultConfig(seed int64, obstacles int) Config {
	return Config{
		Seed:            seed,
		Universe:        10000,
		Obstacles:       obstacles,
		Hotspots:        4,
		HotspotFraction: 0.5,
		MaxRunBlocks:    4,
	}
}

// World is a generated dataset: obstacles plus samplers for correlated
// entity and query points.
type World struct {
	cfg   Config
	Rects []geom.Rect
	Polys []geom.Polygon
}

// Generate builds the obstacle set for cfg.
func Generate(cfg Config) *World {
	if cfg.Universe <= 0 {
		cfg.Universe = 10000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rects := streetMap(rng, cfg)
	polys := make([]geom.Polygon, len(rects))
	for i, r := range rects {
		polys[i] = geom.RectPolygon(r)
	}
	return &World{cfg: cfg, Rects: rects, Polys: polys}
}

// streetMap lays jittered, hot-spot-weighted street lines on both axes and
// cuts each street into disjoint per-block segment MBRs.
func streetMap(rng *rand.Rand, cfg Config) []geom.Rect {
	n := cfg.Obstacles
	if n <= 0 {
		return nil
	}
	L := cfg.Universe
	runBias := 0.0
	if cfg.MaxRunBlocks > 1 {
		runBias = 0.9 // continuation probability for the crossing's owner
	}
	avgRun := 1 / (1 - runBias/2)
	// ~2*V*H/avgRun segments from V+H lines; aim ~40% above the target so
	// that truncation after shuffling keeps the distribution intact.
	lines := int(math.Ceil(math.Sqrt(float64(n) * 0.7 * avgRun)))
	if lines < 2 {
		lines = 2
	}
	spacing := L / float64(lines)
	width := spacing / 6
	gap := width // keeps crossing streets disjoint (gap >= width/2)

	xs := samplePositions(rng, cfg, lines, L, 3*width)
	ys := samplePositions(rng, cfg, lines, L, 3*width)

	// At every crossing exactly one of the two streets may run through
	// unbroken (longer segments form longer barriers); the other breaks,
	// which keeps all segments pairwise disjoint by construction.
	contV := make([][]bool, len(xs)) // vertical street i continues past ys[j]
	contH := make([][]bool, len(ys)) // horizontal street j continues past xs[i]
	for i := range contV {
		contV[i] = make([]bool, len(ys))
	}
	for j := range contH {
		contH[j] = make([]bool, len(xs))
	}
	for i := range xs {
		for j := range ys {
			if rng.Intn(2) == 0 {
				contV[i][j] = rng.Float64() < runBias
			} else {
				contH[j][i] = rng.Float64() < runBias
			}
		}
	}
	// cutStreet slices one street into segments, breaking at every crossing
	// the street does not continue through.
	cutStreet := func(cross []float64, cont []bool, w float64, emit func(lo, hi float64)) {
		start := 0
		for j := 1; j < len(cross); j++ {
			if j < len(cross)-1 && cont[j] {
				continue
			}
			lo, hi := cross[start]+gap, cross[j]-gap
			if hi-lo >= w {
				emit(lo, hi)
			}
			start = j
		}
	}
	var rects []geom.Rect
	for i, x := range xs {
		w := width * (0.5 + rng.Float64()*0.5)
		cutStreet(ys, contV[i], w, func(lo, hi float64) {
			rects = append(rects, geom.R(x-w/2, lo, x+w/2, hi))
		})
	}
	for j, y := range ys {
		w := width * (0.5 + rng.Float64()*0.5)
		cutStreet(xs, contH[j], w, func(lo, hi float64) {
			rects = append(rects, geom.R(lo, y-w/2, hi, y+w/2))
		})
	}
	rng.Shuffle(len(rects), func(i, j int) { rects[i], rects[j] = rects[j], rects[i] })
	if len(rects) > n {
		rects = rects[:n]
	}
	return rects
}

// samplePositions draws sorted line coordinates from a mixture of a uniform
// component and Gaussians around the hot-spots, then enforces a minimum
// spacing so crossing streets stay disjoint.
func samplePositions(rng *rand.Rand, cfg Config, count int, L, minGap float64) []float64 {
	centers := make([]float64, cfg.Hotspots)
	for i := range centers {
		centers[i] = rng.Float64() * L
	}
	raw := make([]float64, 0, count*2)
	for len(raw) < count*2 {
		var v float64
		if len(centers) > 0 && rng.Float64() < cfg.HotspotFraction {
			c := centers[rng.Intn(len(centers))]
			v = c + rng.NormFloat64()*L/12
		} else {
			v = rng.Float64() * L
		}
		if v > minGap && v < L-minGap {
			raw = append(raw, v)
		}
	}
	sort.Float64s(raw)
	out := make([]float64, 0, count)
	last := -minGap
	for _, v := range raw {
		if v-last >= minGap {
			out = append(out, v)
			last = v
			if len(out) == count {
				break
			}
		}
	}
	return out
}

// EntityRand returns a deterministic sub-generator for entity sampling, so
// different datasets drawn from the same world are independent.
func (w *World) EntityRand(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(w.cfg.Seed*1_000_003 + salt))
}

// Entities samples n points following the obstacle distribution: each lies
// on the boundary of a randomly chosen obstacle (never in an interior,
// since obstacles are disjoint). With no obstacles it falls back to uniform.
func (w *World) Entities(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = w.BoundaryPoint(rng)
	}
	return pts
}

// BoundaryPoint samples one point on the boundary of a random obstacle.
func (w *World) BoundaryPoint(rng *rand.Rand) geom.Point {
	if len(w.Rects) == 0 {
		return geom.Pt(rng.Float64()*w.cfg.Universe, rng.Float64()*w.cfg.Universe)
	}
	r := w.Rects[rng.Intn(len(w.Rects))]
	perim := 2 * (r.Width() + r.Height())
	d := rng.Float64() * perim
	switch {
	case d < r.Width(): // bottom
		return geom.Pt(r.MinX+d, r.MinY)
	case d < r.Width()+r.Height(): // right
		return geom.Pt(r.MaxX, r.MinY+(d-r.Width()))
	case d < 2*r.Width()+r.Height(): // top
		return geom.Pt(r.MaxX-(d-r.Width()-r.Height()), r.MaxY)
	default: // left
		return geom.Pt(r.MinX, r.MaxY-(d-2*r.Width()-r.Height()))
	}
}

// Queries samples a query workload following the obstacle distribution, as
// in the experiments (Section 7).
func (w *World) Queries(rng *rand.Rand, n int) []geom.Point {
	return w.Entities(rng, n)
}

// UniformPoints samples points uniformly in the universe, rejecting obstacle
// interiors; an alternative entity distribution for sensitivity studies.
func (w *World) UniformPoints(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		p := geom.Pt(rng.Float64()*w.cfg.Universe, rng.Float64()*w.cfg.Universe)
		inside := false
		for _, r := range w.Rects {
			if r.ContainsStrict(p) {
				inside = true
				break
			}
		}
		if !inside {
			pts = append(pts, p)
		}
	}
	return pts
}

// Universe returns the side length of the data space.
func (w *World) Universe() float64 { return w.cfg.Universe }
