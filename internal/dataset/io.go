package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// WriteRects writes rectangles as CSV lines "minx,miny,maxx,maxy".
func WriteRects(w io.Writer, rects []geom.Rect) error {
	bw := bufio.NewWriter(w)
	for _, r := range rects {
		if _, err := fmt.Fprintf(bw, "%g,%g,%g,%g\n", r.MinX, r.MinY, r.MaxX, r.MaxY); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadRects parses rectangles written by WriteRects.
func ReadRects(r io.Reader) ([]geom.Rect, error) {
	var out []geom.Rect
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f, err := parseFloats(text, 4)
		if err != nil {
			return nil, fmt.Errorf("dataset: rects line %d: %w", line, err)
		}
		rect := geom.R(f[0], f[1], f[2], f[3])
		if rect.IsEmpty() {
			return nil, fmt.Errorf("dataset: rects line %d: empty rectangle", line)
		}
		out = append(out, rect)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WritePoints writes points as CSV lines "x,y".
func WritePoints(w io.Writer, pts []geom.Point) error {
	bw := bufio.NewWriter(w)
	for _, p := range pts {
		if _, err := fmt.Fprintf(bw, "%g,%g\n", p.X, p.Y); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPoints parses points written by WritePoints.
func ReadPoints(r io.Reader) ([]geom.Point, error) {
	var out []geom.Point
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f, err := parseFloats(text, 2)
		if err != nil {
			return nil, fmt.Errorf("dataset: points line %d: %w", line, err)
		}
		out = append(out, geom.Pt(f[0], f[1]))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseFloats(line string, n int) ([]float64, error) {
	parts := strings.Split(line, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("want %d fields, got %d", n, len(parts))
	}
	out := make([]float64, n)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("field %d: %w", i+1, err)
		}
		out[i] = v
	}
	return out, nil
}
