package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geom"
)

// goldenPoints / goldenRects are the literals the checked-in golden files
// were written from; the tests pin both directions of the on-disk format.
var goldenPoints = []geom.Point{
	geom.Pt(0, 0),
	geom.Pt(1.5, -2.25),
	geom.Pt(123456.789, -0.001),
	geom.Pt(1e-9, 3.5e10),
	geom.Pt(-7, 42),
}

var goldenRects = []geom.Rect{
	geom.R(0, 0, 1, 2),
	geom.R(-5.5, 3.25, 10.125, 20),
	geom.R(1e-9, 1e-9, 2e-9, 3e-9),
	geom.R(-100, -100, -99.5, -99.25),
}

// TestGoldenFiles pins the CSV wire format: reading the checked-in files
// yields exactly the literals, and writing the literals reproduces the
// files byte-for-byte — so a format change cannot slip through as a mere
// round-trip-preserving refactor.
func TestGoldenFiles(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "points.golden.csv"))
	if err != nil {
		t.Fatal(err)
	}
	pts, err := ReadPoints(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(goldenPoints) {
		t.Fatalf("read %d points, want %d", len(pts), len(goldenPoints))
	}
	for i := range pts {
		if pts[i] != goldenPoints[i] {
			t.Errorf("point %d: read %v, want %v", i, pts[i], goldenPoints[i])
		}
	}
	var buf bytes.Buffer
	if err := WritePoints(&buf, goldenPoints); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Errorf("WritePoints output diverged from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), raw)
	}

	raw, err = os.ReadFile(filepath.Join("testdata", "rects.golden.csv"))
	if err != nil {
		t.Fatal(err)
	}
	rects, err := ReadRects(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(rects) != len(goldenRects) {
		t.Fatalf("read %d rects, want %d", len(rects), len(goldenRects))
	}
	for i := range rects {
		if rects[i] != goldenRects[i] {
			t.Errorf("rect %d: read %v, want %v", i, rects[i], goldenRects[i])
		}
	}
	buf.Reset()
	if err := WriteRects(&buf, goldenRects); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Errorf("WriteRects output diverged from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), raw)
	}
}

// FuzzReadPoints asserts the parser never panics and never fabricates data:
// on success every parsed point must survive a write/read round trip.
func FuzzReadPoints(f *testing.F) {
	f.Add([]byte("1,2\n3.5,-4\n"))
	f.Add([]byte("# comment\n\n1e-9,3.5e+10\n"))
	f.Add([]byte("1,2,3\n"))
	f.Add([]byte("nan,inf\n"))
	f.Add([]byte(",\n"))
	f.Add([]byte("1,2\r\n3,4"))
	f.Fuzz(func(t *testing.T, data []byte) {
		pts, err := ReadPoints(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WritePoints(&buf, pts); err != nil {
			t.Fatalf("write-back of parsed points failed: %v", err)
		}
		back, err := ReadPoints(&buf)
		if err != nil {
			t.Fatalf("round trip of parsed points failed: %v", err)
		}
		if len(back) != len(pts) {
			t.Fatalf("round trip changed count: %d -> %d", len(pts), len(back))
		}
	})
}

// FuzzReadRects is FuzzReadPoints for the rectangle format; it additionally
// checks the parser's "no empty rectangles" contract.
func FuzzReadRects(f *testing.F) {
	f.Add([]byte("0,0,1,1\n"))
	f.Add([]byte("# c\n-5,-5,5,5\n"))
	f.Add([]byte("5,5,1,1\n"))
	f.Add([]byte("1,2,3\n"))
	f.Add([]byte("a,b,c,d\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		rects, err := ReadRects(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, r := range rects {
			if r.IsEmpty() {
				t.Fatalf("rect %d parsed as empty: %v", i, r)
			}
		}
		var buf bytes.Buffer
		if err := WriteRects(&buf, rects); err != nil {
			t.Fatalf("write-back of parsed rects failed: %v", err)
		}
		back, err := ReadRects(&buf)
		if err != nil {
			t.Fatalf("round trip of parsed rects failed: %v", err)
		}
		if len(back) != len(rects) {
			t.Fatalf("round trip changed count: %d -> %d", len(rects), len(back))
		}
	})
}
