package dataset

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestRectsRoundTrip(t *testing.T) {
	in := []geom.Rect{
		geom.R(0, 0, 1, 2),
		geom.R(-5.5, 3.25, 10.125, 20),
		geom.R(1e-9, 1e-9, 2e-9, 3e-9),
	}
	var buf bytes.Buffer
	if err := WriteRects(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadRects(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d rects", len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("rect %d: %v != %v", i, in[i], out[i])
		}
	}
}

func TestPointsRoundTrip(t *testing.T) {
	in := []geom.Point{{X: 1, Y: 2}, {X: -3.5, Y: 0}, {X: 123456.789, Y: -0.001}}
	var buf bytes.Buffer
	if err := WritePoints(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadPoints(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d points", len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("point %d: %v != %v", i, in[i], out[i])
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	src := "# header\n\n1,2\n  # indented comment\n3,4\n"
	pts, err := ReadPoints(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0] != geom.Pt(1, 2) || pts[1] != geom.Pt(3, 4) {
		t.Fatalf("got %v", pts)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, src string
		rects     bool
	}{
		{"too few fields", "1,2,3\n", true},
		{"too many fields", "1,2,3\n", false},
		{"bad number", "1,x\n", false},
		{"empty rect", "5,5,1,1\n", true},
	}
	for _, c := range cases {
		var err error
		if c.rects {
			_, err = ReadRects(strings.NewReader(c.src))
		} else {
			_, err = ReadPoints(strings.NewReader(c.src))
		}
		if err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestGeneratedWorldRoundTrip(t *testing.T) {
	w := Generate(DefaultConfig(5, 500))
	var buf bytes.Buffer
	if err := WriteRects(&buf, w.Rects); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRects(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(w.Rects) {
		t.Fatalf("got %d", len(back))
	}
	for i := range back {
		if back[i] != w.Rects[i] {
			t.Fatalf("rect %d mismatch", i)
		}
	}
}
