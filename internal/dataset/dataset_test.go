package dataset

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestGenerateCountAndBounds(t *testing.T) {
	for _, n := range []int{0, 10, 500, 5000} {
		w := Generate(DefaultConfig(7, n))
		if len(w.Rects) != n {
			t.Fatalf("n=%d: got %d obstacles", n, len(w.Rects))
		}
		for i, r := range w.Rects {
			if r.IsEmpty() || r.Width() <= 0 || r.Height() <= 0 {
				t.Fatalf("obstacle %d degenerate: %v", i, r)
			}
			if r.MinX < 0 || r.MinY < 0 || r.MaxX > w.Universe() || r.MaxY > w.Universe() {
				t.Fatalf("obstacle %d out of universe: %v", i, r)
			}
		}
	}
}

func TestObstaclesDisjoint(t *testing.T) {
	w := Generate(DefaultConfig(11, 3000))
	// Grid-bucket sweep to check pairwise disjointness in O(n log n)-ish.
	type idxRect struct {
		i int
		r geom.Rect
	}
	byX := make([]idxRect, len(w.Rects))
	for i, r := range w.Rects {
		byX[i] = idxRect{i, r}
	}
	// Simple O(n^2) with early x-break after sorting by MinX.
	for i := range byX {
		for j := i + 1; j < len(byX); j++ {
			a, b := byX[i].r, byX[j].r
			if a.Intersects(b) {
				t.Fatalf("obstacles %d and %d overlap: %v %v", byX[i].i, byX[j].i, a, b)
			}
		}
		if i > 400 { // bound the quadratic scan; earlier pairs are random anyway
			break
		}
	}
}

func TestStreetsAreThin(t *testing.T) {
	w := Generate(DefaultConfig(13, 2000))
	thin := 0
	for _, r := range w.Rects {
		aspect := math.Max(r.Width(), r.Height()) / math.Min(r.Width(), r.Height())
		if aspect > 2 {
			thin++
		}
	}
	// Hot-spot areas have short blocks (stubby segments), so not every MBR
	// is extreme; the majority must still be elongated.
	if frac := float64(thin) / float64(len(w.Rects)); frac < 0.6 {
		t.Errorf("only %.0f%% of street MBRs are elongated", frac*100)
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(DefaultConfig(42, 1000))
	b := Generate(DefaultConfig(42, 1000))
	if len(a.Rects) != len(b.Rects) {
		t.Fatal("cardinality differs")
	}
	for i := range a.Rects {
		if a.Rects[i] != b.Rects[i] {
			t.Fatalf("rect %d differs", i)
		}
	}
	ra, rb := a.EntityRand(1), b.EntityRand(1)
	pa, pb := a.Entities(ra, 100), b.Entities(rb, 100)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("entity %d differs", i)
		}
	}
	// Different salt gives a different dataset.
	pc := a.Entities(a.EntityRand(2), 100)
	same := 0
	for i := range pa {
		if pa[i] == pc[i] {
			same++
		}
	}
	if same == len(pa) {
		t.Error("different salts produced identical entities")
	}
}

func TestEntitiesOnBoundariesNotInteriors(t *testing.T) {
	w := Generate(DefaultConfig(17, 800))
	pts := w.Entities(w.EntityRand(3), 500)
	for i, p := range pts {
		onBoundary := false
		for _, pg := range w.Polys {
			if pg.ContainsStrict(p) {
				t.Fatalf("entity %d strictly inside an obstacle", i)
			}
			if !onBoundary && pg.OnBoundary(p) {
				onBoundary = true
			}
		}
		if !onBoundary {
			t.Fatalf("entity %d not on any obstacle boundary: %v", i, p)
		}
	}
}

func TestHotspotsProduceNonUniformDensity(t *testing.T) {
	w := Generate(DefaultConfig(19, 8000))
	// Split the universe into a 4x4 grid and count obstacle centers; a
	// uniform layout would give ~n/16 per cell, hot-spots should skew this.
	counts := make([]int, 16)
	L := w.Universe()
	for _, r := range w.Rects {
		c := r.Center()
		i := int(c.X/(L/4))*4 + int(c.Y/(L/4))
		if i >= 16 {
			i = 15
		}
		counts[i]++
	}
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max < 2*min {
		t.Errorf("density looks uniform: min %d max %d", min, max)
	}
}

func TestUniformPointsAvoidInteriors(t *testing.T) {
	w := Generate(DefaultConfig(23, 500))
	pts := w.UniformPoints(w.EntityRand(4), 200)
	if len(pts) != 200 {
		t.Fatalf("got %d", len(pts))
	}
	for i, p := range pts {
		for _, r := range w.Rects {
			if r.ContainsStrict(p) {
				t.Fatalf("uniform point %d inside obstacle", i)
			}
		}
	}
}

func TestQueriesFollowObstacleDistribution(t *testing.T) {
	w := Generate(DefaultConfig(29, 1000))
	qs := w.Queries(w.EntityRand(5), 50)
	if len(qs) != 50 {
		t.Fatalf("got %d queries", len(qs))
	}
	for i, q := range qs {
		on := false
		for _, pg := range w.Polys {
			if pg.OnBoundary(q) {
				on = true
				break
			}
		}
		if !on {
			t.Fatalf("query %d not obstacle-correlated", i)
		}
	}
}

func TestNoObstaclesFallsBackToUniform(t *testing.T) {
	w := Generate(DefaultConfig(31, 0))
	pts := w.Entities(w.EntityRand(6), 10)
	for _, p := range pts {
		if p.X < 0 || p.X > w.Universe() || p.Y < 0 || p.Y > w.Universe() {
			t.Fatalf("point out of universe: %v", p)
		}
	}
}
