package obstacles_test

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	obstacles "repro"
)

// BenchmarkChurnMix measures query throughput under the dynamic-update
// workload — the baseline recorded in BENCH_updates.json. Workers over one
// shared Database run the mixed k-NN + range workload of
// BenchmarkConcurrentQueries, but a fraction of operations (the update mix)
// mutate the database in place instead: point churn (InsertPoints +
// DeletePoints keeping the live count steady) alternating with obstacle
// churn (AddObstacleRects + RemoveObstacles, each closure invalidating only
// the cached graphs whose coverage it touches). queries/sec is aggregate
// query throughput; pages/query is per-query page accesses via WithStats.
func BenchmarkChurnMix(b *testing.B) {
	for _, mix := range []float64{0, 0.01, 0.10} {
		for _, g := range []int{1, 4} {
			b.Run(fmt.Sprintf("mix=%g%%/goroutines=%d", mix*100, g), func(b *testing.B) {
				benchChurn(b, mix, g)
			})
		}
	}
}

func benchChurn(b *testing.B, mix float64, g int) {
	db, universe := clusterBench(b, 1000, 2000)
	rng := rand.New(rand.NewSource(5))
	queries := make([]obstacles.Point, 64)
	for i := range queries {
		queries[i] = obstacles.Pt(rng.Float64()*universe, rng.Float64()*universe)
	}
	radius := universe * 0.02
	for _, q := range queries {
		if _, err := db.NearestNeighbors(bctx, "P", q, 8); err != nil {
			b.Fatal(err)
		}
	}
	var (
		nQueries atomic.Uint64
		nUpdates atomic.Uint64
		pages    atomic.Uint64
		// placeMu makes each obstacle probe-then-add atomic across workers:
		// two concurrent placements could otherwise both probe "clear" and
		// insert overlapping interiors, which the plane sweep does not allow.
		placeMu sync.Mutex
	)
	per := (b.N + g - 1) / g
	var wg sync.WaitGroup
	b.ResetTimer()
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(int64(100 + w)))
			var myPts, myObst []int64
			for i := 0; i < per; i++ {
				if wrng.Float64() < mix {
					nUpdates.Add(1)
					if err := churnUpdate(db, wrng, universe, &placeMu, &myPts, &myObst); err != nil {
						b.Error(err)
						return
					}
					continue
				}
				nQueries.Add(1)
				q := queries[(w*per+i)%len(queries)]
				var qs obstacles.QueryStats
				var err error
				if i%2 == 0 {
					_, err = db.NearestNeighbors(bctx, "P", q, 8, obstacles.WithStats(&qs))
				} else {
					_, err = db.Range(bctx, "P", q, radius, obstacles.WithStats(&qs))
				}
				if err != nil {
					b.Error(err)
					return
				}
				pages.Add(qs.PageAccesses)
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	elapsed := time.Since(start)
	if q := nQueries.Load(); q > 0 {
		b.ReportMetric(float64(q)/elapsed.Seconds(), "queries/sec")
		b.ReportMetric(float64(pages.Load())/float64(q), "pages/query")
	}
	b.ReportMetric(float64(nUpdates.Load())/float64(b.N), "update-frac")
}

// churnUpdate performs one steady-state mutation: point churn and obstacle
// churn alternate, each insert paired with a delayed delete so live counts
// stay roughly constant for the whole run.
func churnUpdate(db *obstacles.Database, rng *rand.Rand, universe float64, placeMu *sync.Mutex, myPts, myObst *[]int64) error {
	if rng.Intn(2) == 0 {
		ids, err := db.InsertPoints("P", obstacles.Pt(rng.Float64()*universe, rng.Float64()*universe))
		if err != nil {
			return err
		}
		*myPts = append(*myPts, ids...)
		if len(*myPts) > 32 {
			id := (*myPts)[0]
			*myPts = (*myPts)[1:]
			return db.DeletePoints("P", id)
		}
		return nil
	}
	// A small construction site; probe its corners so it (almost) never
	// overlaps an existing obstacle's interior. The probe and the add
	// commit as one atomic placement under placeMu, so concurrent workers
	// cannot both probe "clear" and insert overlapping sites.
	placeMu.Lock()
	defer placeMu.Unlock()
	s := universe * 0.002
	for try := 0; try < 8; try++ {
		x, y := rng.Float64()*(universe-s), rng.Float64()*(universe-s)
		clear := true
		for _, p := range []obstacles.Point{
			obstacles.Pt(x, y), obstacles.Pt(x+s, y),
			obstacles.Pt(x, y+s), obstacles.Pt(x+s, y+s),
			obstacles.Pt(x+s/2, y+s/2),
		} {
			inside, err := db.InsideObstacle(p)
			if err != nil {
				return err
			}
			if inside {
				clear = false
				break
			}
		}
		if !clear {
			continue
		}
		ids, err := db.AddObstacleRects(obstacles.R(x, y, x+s, y+s))
		if err != nil {
			return err
		}
		*myObst = append(*myObst, ids...)
		break
	}
	if len(*myObst) > 16 {
		id := (*myObst)[0]
		*myObst = (*myObst)[1:]
		return db.RemoveObstacles(id)
	}
	return nil
}
