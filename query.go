package obstacles

import (
	"time"

	"repro/internal/core"
)

// QueryStats reports the work one query performed — the per-query
// replacement for the process-global ResetStats/TreeStats pattern, valid
// even while other queries run concurrently. Collect it by passing
// WithStats(&qs) to any query verb.
type QueryStats struct {
	// PageAccesses counts R-tree page reads that missed the LRU buffers —
	// the metric the paper's experiments plot — summed over the obstacle
	// tree and every dataset tree this query touched.
	PageAccesses uint64
	// LogicalReads counts all node reads, including buffer hits.
	LogicalReads uint64
	// BufferHits counts reads served by the warm buffers.
	BufferHits uint64
	// Candidates is the number of Euclidean candidates examined.
	Candidates int
	// Results is the number of qualifying answers produced by the engine
	// (before WithFilter/WithLimit post-processing).
	Results int
	// FalseHits counts Euclidean candidates eliminated by the obstructed
	// metric.
	FalseHits int
	// DistComputations counts obstructed-distance computations (Fig 8).
	DistComputations int
	// GraphNodes and GraphEdges describe the largest visibility graph the
	// query worked on.
	GraphNodes, GraphEdges int
	// SettledNodes counts Dijkstra-settled visibility-graph nodes — the
	// dominant refinement cost.
	SettledNodes uint64
	// Expansions counts Dijkstra runs.
	Expansions uint64
	// GraphBuilds counts visibility-graph constructions.
	GraphBuilds uint64
	// Elapsed is the query's wall-clock duration.
	Elapsed time.Duration
}

// QueryOption tunes one query call. Options are accepted by every query
// verb; options that do not apply to a verb (e.g. WithFilter on a join) are
// ignored there.
type QueryOption func(*queryConfig)

type queryConfig struct {
	stats      *QueryStats
	limit      int
	filter     func(Neighbor) bool
	pairFilter func(Pair) bool
}

func applyOptions(opts []QueryOption) queryConfig {
	cfg := queryConfig{limit: -1}
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return cfg
}

// WithStats collects per-query work counters into qs. The struct is
// overwritten when the query finishes; it must not be shared between
// concurrent queries.
func WithStats(qs *QueryStats) QueryOption {
	return func(c *queryConfig) { c.stats = qs }
}

// WithLimit caps the number of results returned. Result sets ordered by
// distance keep the closest n; iterator sequences stop after n elements.
// n <= 0 removes the cap.
func WithLimit(n int) QueryOption {
	return func(c *queryConfig) {
		if n <= 0 {
			n = -1
		}
		c.limit = n
	}
}

// WithFilter keeps only neighbors satisfying pred. Applies to Range,
// NearestNeighbors and Nearest; for NearestNeighbors the k results are the k
// closest entities that satisfy pred (evaluated on the incremental stream),
// not a filtered subset of the unfiltered kNN set.
//
// pred runs on the query's pinned generation; it may call back into the
// Database (reads never block mutators), but such a re-entrant query reads
// the then-current generation, not the outer query's pin — capture plain
// data or use a Snapshot when the predicate needs a consistent view.
func WithFilter(pred func(Neighbor) bool) QueryOption {
	return func(c *queryConfig) { c.filter = pred }
}

// WithPairFilter keeps only pairs satisfying pred. Applies to DistanceJoin,
// ClosestPairs and Closest; for ClosestPairs the k results are the k closest
// pairs that satisfy pred. Like WithFilter, pred must not call back into
// the Database.
func WithPairFilter(pred func(Pair) bool) QueryOption {
	return func(c *queryConfig) { c.pairFilter = pred }
}

// record fills cfg.stats (when requested) from the session's cumulative
// work and the engine-level counters of the call.
func (cfg *queryConfig) record(sess *core.Session, st core.Stats, start time.Time) {
	if cfg.stats == nil {
		return
	}
	met, io := sess.Work()
	*cfg.stats = QueryStats{
		PageAccesses:     io.PhysicalReads,
		LogicalReads:     io.LogicalReads,
		BufferHits:       io.BufferHits,
		Candidates:       st.Candidates,
		Results:          st.Results,
		FalseHits:        st.FalseHits,
		DistComputations: st.DistComputations,
		GraphNodes:       st.GraphNodes,
		GraphEdges:       st.GraphEdges,
		SettledNodes:     met.SettledNodes,
		Expansions:       met.Expansions,
		GraphBuilds:      met.Builds,
		Elapsed:          time.Since(start),
	}
}

// applyNeighborOpts applies WithFilter and WithLimit to a distance-sorted
// neighbor list.
func (cfg *queryConfig) applyNeighborOpts(nbs []Neighbor) []Neighbor {
	if cfg.filter != nil {
		kept := nbs[:0]
		for _, nb := range nbs {
			if cfg.filter(nb) {
				kept = append(kept, nb)
			}
		}
		nbs = kept
	}
	if cfg.limit >= 0 && len(nbs) > cfg.limit {
		nbs = nbs[:cfg.limit]
	}
	return nbs
}

// applyPairOpts applies WithPairFilter and WithLimit to a distance-sorted
// pair list.
func (cfg *queryConfig) applyPairOpts(ps []Pair) []Pair {
	if cfg.pairFilter != nil {
		kept := ps[:0]
		for _, p := range ps {
			if cfg.pairFilter(p) {
				kept = append(kept, p)
			}
		}
		ps = kept
	}
	if cfg.limit >= 0 && len(ps) > cfg.limit {
		ps = ps[:cfg.limit]
	}
	return ps
}
