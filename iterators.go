package obstacles

import (
	"context"
	"iter"
	"time"

	"repro/internal/core"
)

// Nearest returns the entities of the dataset in ascending order of
// obstructed distance from q, without a predeclared k — the incremental ONN
// variant. The sequence yields (Neighbor, nil) per entity; on failure it
// yields a final (zero Neighbor, err) and stops. Useful for complex
// predicates ("closest restaurant that is open") where the qualifying rank
// is unknown in advance:
//
//	for nb, err := range db.Nearest(ctx, "restaurants", q) {
//		if err != nil { ... }
//		if open(nb.ID) { use(nb); break }
//	}
//
// WithFilter and WithLimit apply in-stream; WithStats is written when the
// loop ends (break included). Cancelling ctx ends the sequence with
// ctx.Err(). Unlike the one-shot verbs, the stream does not pin the
// database between pulls: if InsertPoints/DeletePoints/AddObstacles/
// RemoveObstacles commit mid-stream, the sequence ends with
// ErrConcurrentUpdate and should be restarted.
func (db *Database) Nearest(ctx context.Context, dataset string, q Point, opts ...QueryOption) iter.Seq2[Neighbor, error] {
	return func(yield func(Neighbor, error) bool) {
		cfg := applyOptions(opts)
		start := time.Now()
		ps, err := db.dataset(dataset)
		if err != nil {
			yield(Neighbor{}, err)
			return
		}
		db.updateMu.RLock()
		gen := db.generation()
		sess := db.newSession(ctx)
		it := sess.NearestIterator(ps, q)
		db.updateMu.RUnlock()
		emitted, pulled := 0, 0
		defer func() {
			st := it.Stats()
			st.Results = emitted
			// False hits are candidates the obstructed metric eliminated
			// (retrieved in Euclidean order but never surfaced in obstructed
			// order) — not entities the caller's filter rejected.
			st.FalseHits = st.Candidates - pulled
			db.record(VerbNearestStream, &cfg, sess, st, start, it.Err())
		}()
		for cfg.limit < 0 || emitted < cfg.limit {
			db.updateMu.RLock()
			if db.generation() != gen {
				db.updateMu.RUnlock()
				yield(Neighbor{}, ErrConcurrentUpdate)
				return
			}
			r, ok := it.Next()
			db.updateMu.RUnlock()
			if !ok {
				if err := it.Err(); err != nil {
					yield(Neighbor{}, err)
				}
				return
			}
			pulled++
			nb := Neighbor{ID: r.ID, Point: r.Pt, Distance: r.Dist}
			if cfg.filter != nil && !cfg.filter(nb) {
				continue
			}
			if !yield(nb, nil) {
				return
			}
			emitted++
		}
	}
}

// Closest returns pairs from the two datasets in ascending order of
// obstructed distance, without a predeclared k — the iOCP algorithm (Fig 12
// of the paper). The sequence yields (Pair, nil) per pair; on failure it
// yields a final (zero Pair, err) and stops. Useful for browsing pairs or
// for constrained closest-pair queries ("closest city/factory pair where
// the city has over 1M residents"). WithPairFilter and WithLimit apply
// in-stream; WithStats is written when the loop ends. Cancelling ctx ends
// the sequence with ctx.Err(); a mutation committing mid-stream ends it
// with ErrConcurrentUpdate.
func (db *Database) Closest(ctx context.Context, dataset1, dataset2 string, opts ...QueryOption) iter.Seq2[Pair, error] {
	return func(yield func(Pair, error) bool) {
		cfg := applyOptions(opts)
		start := time.Now()
		s, err := db.dataset(dataset1)
		if err != nil {
			yield(Pair{}, err)
			return
		}
		t, err := db.dataset(dataset2)
		if err != nil {
			yield(Pair{}, err)
			return
		}
		db.updateMu.RLock()
		gen := db.generation()
		sess := db.newSession(ctx)
		it, err := sess.ClosestPairIterator(s, t)
		db.updateMu.RUnlock()
		if err != nil {
			yield(Pair{}, err)
			return
		}
		emitted, pulled := 0, 0
		defer func() {
			st := it.Stats()
			st.Results = emitted
			st.FalseHits = st.Candidates - pulled
			db.record(VerbClosestStream, &cfg, sess, st, start, it.Err())
		}()
		for cfg.limit < 0 || emitted < cfg.limit {
			db.updateMu.RLock()
			if db.generation() != gen {
				db.updateMu.RUnlock()
				yield(Pair{}, ErrConcurrentUpdate)
				return
			}
			jp, ok := it.Next()
			db.updateMu.RUnlock()
			if !ok {
				if err := it.Err(); err != nil {
					yield(Pair{}, err)
				}
				return
			}
			pulled++
			p := Pair{ID1: jp.SID, ID2: jp.TID, Distance: jp.Dist}
			if cfg.pairFilter != nil && !cfg.pairFilter(p) {
				continue
			}
			if !yield(p, nil) {
				return
			}
			emitted++
		}
	}
}

// NearestIterator reports entities in ascending order of obstructed
// distance without a predeclared k.
//
// Deprecated: use Nearest, the range-over-func form. This wrapper drives
// the same machinery with a background context.
type NearestIterator struct {
	db    *Database
	gen   uint64
	inner *core.NNIterator
	err   error
}

// NearestIterator starts an incremental nearest-neighbor search on the
// dataset around q.
//
// Deprecated: use Nearest.
func (db *Database) NearestIterator(dataset string, q Point) (*NearestIterator, error) {
	ps, err := db.dataset(dataset)
	if err != nil {
		return nil, err
	}
	db.updateMu.RLock()
	defer db.updateMu.RUnlock()
	sess := db.engine.NewSession(context.Background())
	return &NearestIterator{db: db, gen: db.generation(), inner: sess.NearestIterator(ps, q)}, nil
}

// Next returns the next entity by obstructed distance; ok is false when the
// dataset is exhausted or an error occurred (check Err).
func (it *NearestIterator) Next() (Neighbor, bool) {
	if it.err != nil {
		return Neighbor{}, false
	}
	it.db.updateMu.RLock()
	defer it.db.updateMu.RUnlock()
	if it.db.generation() != it.gen {
		it.err = ErrConcurrentUpdate
		it.inner.Stop()
		return Neighbor{}, false
	}
	r, ok := it.inner.Next()
	if !ok {
		return Neighbor{}, false
	}
	return Neighbor{ID: r.ID, Point: r.Pt, Distance: r.Dist}, true
}

// Err returns the first error encountered, if any (ErrConcurrentUpdate when
// a mutation committed mid-iteration).
func (it *NearestIterator) Err() error {
	if it.err != nil {
		return it.err
	}
	return it.inner.Err()
}

// Stop publishes an abandoned iterator's work to the engine's cumulative
// counters; exhausting the iterator does the same automatically.
func (it *NearestIterator) Stop() { it.inner.Stop() }

// ClosestPairIterator reports pairs in ascending order of obstructed
// distance without a predeclared k.
//
// Deprecated: use Closest, the range-over-func form. This wrapper drives
// the same machinery with a background context.
type ClosestPairIterator struct {
	db    *Database
	gen   uint64
	inner *core.CPIterator
	err   error
}

// ClosestPairIterator starts an incremental closest-pair search between the
// two datasets.
//
// Deprecated: use Closest.
func (db *Database) ClosestPairIterator(dataset1, dataset2 string) (*ClosestPairIterator, error) {
	s, err := db.dataset(dataset1)
	if err != nil {
		return nil, err
	}
	t, err := db.dataset(dataset2)
	if err != nil {
		return nil, err
	}
	db.updateMu.RLock()
	defer db.updateMu.RUnlock()
	sess := db.engine.NewSession(context.Background())
	inner, err := sess.ClosestPairIterator(s, t)
	if err != nil {
		return nil, err
	}
	return &ClosestPairIterator{db: db, gen: db.generation(), inner: inner}, nil
}

// Next returns the next pair by obstructed distance; ok is false when the
// pairs are exhausted or an error occurred (check Err).
func (it *ClosestPairIterator) Next() (Pair, bool) {
	if it.err != nil {
		return Pair{}, false
	}
	it.db.updateMu.RLock()
	defer it.db.updateMu.RUnlock()
	if it.db.generation() != it.gen {
		it.err = ErrConcurrentUpdate
		it.inner.Stop()
		return Pair{}, false
	}
	p, ok := it.inner.Next()
	if !ok {
		return Pair{}, false
	}
	return Pair{ID1: p.SID, ID2: p.TID, Distance: p.Dist}, true
}

// Err returns the first error encountered, if any (ErrConcurrentUpdate when
// a mutation committed mid-iteration).
func (it *ClosestPairIterator) Err() error {
	if it.err != nil {
		return it.err
	}
	return it.inner.Err()
}

// Stop publishes an abandoned iterator's work to the engine's cumulative
// counters; exhausting the iterator does the same automatically.
func (it *ClosestPairIterator) Stop() { it.inner.Stop() }
