package obstacles

import (
	"context"
	"iter"
	"time"

	"repro/internal/core"
)

// Nearest returns the entities of the dataset in ascending order of
// obstructed distance from q, without a predeclared k — the incremental ONN
// variant. The sequence yields (Neighbor, nil) per entity; on failure it
// yields a final (zero Neighbor, err) and stops. Useful for complex
// predicates ("closest restaurant that is open") where the qualifying rank
// is unknown in advance:
//
//	for nb, err := range db.Nearest(ctx, "restaurants", q) {
//		if err != nil { ... }
//		if open(nb.ID) { use(nb); break }
//	}
//
// WithFilter and WithLimit apply in-stream; WithStats is written when the
// loop ends (break included). Cancelling ctx ends the sequence with
// ctx.Err(). The stream pins the generation current when it starts:
// mutations committing mid-stream neither disturb it nor appear in it — the
// sequence reports exactly the pre-mutation dataset and obstacle set.
func (db *Database) Nearest(ctx context.Context, dataset string, q Point, opts ...QueryOption) iter.Seq2[Neighbor, error] {
	return func(yield func(Neighbor, error) bool) {
		v := db.pin()
		defer db.unpin(v)
		db.nearestAt(v, ctx, dataset, q, opts...)(yield)
	}
}

// nearestAt is the stream body over an already-pinned version; the caller
// owns the pin for the duration of the iteration.
func (db *Database) nearestAt(v *dbVersion, ctx context.Context, dataset string, q Point, opts ...QueryOption) iter.Seq2[Neighbor, error] {
	return func(yield func(Neighbor, error) bool) {
		cfg := applyOptions(opts)
		start := time.Now()
		ps, err := v.dataset(dataset)
		if err != nil {
			yield(Neighbor{}, err)
			return
		}
		sess := db.newSessionAt(ctx, v, VerbNearestStream)
		it := sess.NearestIterator(ps, q)
		emitted, pulled := 0, 0
		defer func() {
			st := it.Stats()
			st.Results = emitted
			// False hits are candidates the obstructed metric eliminated
			// (retrieved in Euclidean order but never surfaced in obstructed
			// order) — not entities the caller's filter rejected.
			st.FalseHits = st.Candidates - pulled
			db.record(VerbNearestStream, &cfg, sess, st, start, it.Err())
		}()
		for cfg.limit < 0 || emitted < cfg.limit {
			r, ok := it.Next()
			if !ok {
				if err := it.Err(); err != nil {
					yield(Neighbor{}, err)
				}
				return
			}
			pulled++
			nb := Neighbor{ID: r.ID, Point: r.Pt, Distance: r.Dist}
			if cfg.filter != nil && !cfg.filter(nb) {
				continue
			}
			if !yield(nb, nil) {
				return
			}
			emitted++
		}
	}
}

// Closest returns pairs from the two datasets in ascending order of
// obstructed distance, without a predeclared k — the iOCP algorithm (Fig 12
// of the paper). The sequence yields (Pair, nil) per pair; on failure it
// yields a final (zero Pair, err) and stops. Useful for browsing pairs or
// for constrained closest-pair queries ("closest city/factory pair where
// the city has over 1M residents"). WithPairFilter and WithLimit apply
// in-stream; WithStats is written when the loop ends. Cancelling ctx ends
// the sequence with ctx.Err(). Like Nearest, the stream pins its starting
// generation, so mutations committing mid-stream never disturb it.
func (db *Database) Closest(ctx context.Context, dataset1, dataset2 string, opts ...QueryOption) iter.Seq2[Pair, error] {
	return func(yield func(Pair, error) bool) {
		v := db.pin()
		defer db.unpin(v)
		db.closestAt(v, ctx, dataset1, dataset2, opts...)(yield)
	}
}

// closestAt is the stream body over an already-pinned version; the caller
// owns the pin for the duration of the iteration.
func (db *Database) closestAt(v *dbVersion, ctx context.Context, dataset1, dataset2 string, opts ...QueryOption) iter.Seq2[Pair, error] {
	return func(yield func(Pair, error) bool) {
		cfg := applyOptions(opts)
		start := time.Now()
		s, err := v.dataset(dataset1)
		if err != nil {
			yield(Pair{}, err)
			return
		}
		t, err := v.dataset(dataset2)
		if err != nil {
			yield(Pair{}, err)
			return
		}
		sess := db.newSessionAt(ctx, v, VerbClosestStream)
		it, err := sess.ClosestPairIterator(s, t)
		if err != nil {
			yield(Pair{}, err)
			return
		}
		emitted, pulled := 0, 0
		defer func() {
			st := it.Stats()
			st.Results = emitted
			st.FalseHits = st.Candidates - pulled
			db.record(VerbClosestStream, &cfg, sess, st, start, it.Err())
		}()
		for cfg.limit < 0 || emitted < cfg.limit {
			jp, ok := it.Next()
			if !ok {
				if err := it.Err(); err != nil {
					yield(Pair{}, err)
				}
				return
			}
			pulled++
			p := Pair{ID1: jp.SID, ID2: jp.TID, Distance: jp.Dist}
			if cfg.pairFilter != nil && !cfg.pairFilter(p) {
				continue
			}
			if !yield(p, nil) {
				return
			}
			emitted++
		}
	}
}

// NearestIterator reports entities in ascending order of obstructed
// distance without a predeclared k.
//
// Deprecated: use Nearest, the range-over-func form. This wrapper drives
// the same machinery with a background context. It pins the generation
// current when it was created until Stop or exhaustion — call Stop when
// abandoning one early so its snapshot's pages can be reclaimed.
type NearestIterator struct {
	db       *Database
	v        *dbVersion
	inner    *core.NNIterator
	released bool
}

// NearestIterator starts an incremental nearest-neighbor search on the
// dataset around q. The iterator reads the generation current at this call:
// later mutations are invisible to it and never interrupt it.
//
// Deprecated: use Nearest.
func (db *Database) NearestIterator(dataset string, q Point) (*NearestIterator, error) {
	v := db.pin()
	ps, err := v.dataset(dataset)
	if err != nil {
		db.unpin(v)
		return nil, err
	}
	sess := db.engine.NewSessionAt(context.Background(), v.obst)
	return &NearestIterator{db: db, v: v, inner: sess.NearestIterator(ps, q)}, nil
}

func (it *NearestIterator) release() {
	if !it.released {
		it.released = true
		it.db.unpin(it.v)
	}
}

// Next returns the next entity by obstructed distance; ok is false when the
// dataset is exhausted or an error occurred (check Err).
func (it *NearestIterator) Next() (Neighbor, bool) {
	r, ok := it.inner.Next()
	if !ok {
		it.release()
		return Neighbor{}, false
	}
	return Neighbor{ID: r.ID, Point: r.Pt, Distance: r.Dist}, true
}

// Err returns the first error encountered, if any.
func (it *NearestIterator) Err() error { return it.inner.Err() }

// Stop releases the iterator's pinned snapshot and publishes an abandoned
// iterator's work to the engine's cumulative counters; exhausting the
// iterator does the same automatically.
func (it *NearestIterator) Stop() {
	it.inner.Stop()
	it.release()
}

// ClosestPairIterator reports pairs in ascending order of obstructed
// distance without a predeclared k.
//
// Deprecated: use Closest, the range-over-func form. This wrapper drives
// the same machinery with a background context. It pins the generation
// current when it was created until Stop or exhaustion — call Stop when
// abandoning one early so its snapshot's pages can be reclaimed.
type ClosestPairIterator struct {
	db       *Database
	v        *dbVersion
	inner    *core.CPIterator
	released bool
}

// ClosestPairIterator starts an incremental closest-pair search between the
// two datasets. The iterator reads the generation current at this call:
// later mutations are invisible to it and never interrupt it.
//
// Deprecated: use Closest.
func (db *Database) ClosestPairIterator(dataset1, dataset2 string) (*ClosestPairIterator, error) {
	v := db.pin()
	s, err := v.dataset(dataset1)
	if err != nil {
		db.unpin(v)
		return nil, err
	}
	t, err := v.dataset(dataset2)
	if err != nil {
		db.unpin(v)
		return nil, err
	}
	sess := db.engine.NewSessionAt(context.Background(), v.obst)
	inner, err := sess.ClosestPairIterator(s, t)
	if err != nil {
		db.unpin(v)
		return nil, err
	}
	return &ClosestPairIterator{db: db, v: v, inner: inner}, nil
}

func (it *ClosestPairIterator) release() {
	if !it.released {
		it.released = true
		it.db.unpin(it.v)
	}
}

// Next returns the next pair by obstructed distance; ok is false when the
// pairs are exhausted or an error occurred (check Err).
func (it *ClosestPairIterator) Next() (Pair, bool) {
	p, ok := it.inner.Next()
	if !ok {
		it.release()
		return Pair{}, false
	}
	return Pair{ID1: p.SID, ID2: p.TID, Distance: p.Dist}, true
}

// Err returns the first error encountered, if any.
func (it *ClosestPairIterator) Err() error { return it.inner.Err() }

// Stop releases the iterator's pinned snapshot and publishes an abandoned
// iterator's work to the engine's cumulative counters; exhausting the
// iterator does the same automatically.
func (it *ClosestPairIterator) Stop() {
	it.inner.Stop()
	it.release()
}
