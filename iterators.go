package obstacles

import "repro/internal/core"

// NearestIterator reports entities in ascending order of obstructed distance
// without a predeclared k — the incremental ONN variant. Useful for complex
// predicates ("closest restaurant that is open") where the qualifying rank
// is unknown in advance.
type NearestIterator struct {
	inner *core.NNIterator
}

// NearestIterator starts an incremental nearest-neighbor search on the
// dataset around q.
func (db *Database) NearestIterator(dataset string, q Point) (*NearestIterator, error) {
	ps, err := db.dataset(dataset)
	if err != nil {
		return nil, err
	}
	return &NearestIterator{inner: db.engine.NearestIterator(ps, q)}, nil
}

// Next returns the next entity by obstructed distance; ok is false when the
// dataset is exhausted or an error occurred (check Err).
func (it *NearestIterator) Next() (Neighbor, bool) {
	r, ok := it.inner.Next()
	if !ok {
		return Neighbor{}, false
	}
	return Neighbor{ID: r.ID, Point: r.Pt, Distance: r.Dist}, true
}

// Err returns the first error encountered, if any.
func (it *NearestIterator) Err() error { return it.inner.Err() }

// ClosestPairIterator reports pairs in ascending order of obstructed
// distance without a predeclared k — the iOCP algorithm (Fig 12 of the
// paper). Useful for browsing pairs or for constrained closest-pair queries
// ("closest city/factory pair where the city has over 1M residents").
type ClosestPairIterator struct {
	inner *core.CPIterator
}

// ClosestPairIterator starts an incremental closest-pair search between the
// two datasets.
func (db *Database) ClosestPairIterator(dataset1, dataset2 string) (*ClosestPairIterator, error) {
	s, err := db.dataset(dataset1)
	if err != nil {
		return nil, err
	}
	t, err := db.dataset(dataset2)
	if err != nil {
		return nil, err
	}
	inner, err := db.engine.ClosestPairIterator(s, t)
	if err != nil {
		return nil, err
	}
	return &ClosestPairIterator{inner: inner}, nil
}

// Next returns the next pair by obstructed distance; ok is false when the
// pairs are exhausted or an error occurred (check Err).
func (it *ClosestPairIterator) Next() (Pair, bool) {
	p, ok := it.inner.Next()
	if !ok {
		return Pair{}, false
	}
	return Pair{ID1: p.SID, ID2: p.TID, Distance: p.Dist}, true
}

// Err returns the first error encountered, if any.
func (it *ClosestPairIterator) Err() error { return it.inner.Err() }
