package obstacles

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// snapshotAnswers is the bundle of query results used to check that a
// pinned generation keeps answering identically, down to the last bit.
type snapshotAnswers struct {
	rng   []Neighbor
	nn    []Neighbor
	pairs []Pair
	dist  float64
	strm  []Neighbor
	n     int
	obst  int
}

type snapshotReader interface {
	Range(ctx context.Context, dataset string, q Point, radius float64, opts ...QueryOption) ([]Neighbor, error)
	NearestNeighbors(ctx context.Context, dataset string, q Point, k int, opts ...QueryOption) ([]Neighbor, error)
	ClosestPairs(ctx context.Context, dataset1, dataset2 string, k int, opts ...QueryOption) ([]Pair, error)
	ObstructedDistance(ctx context.Context, a, b Point, opts ...QueryOption) (float64, error)
	DatasetLen(name string) (int, error)
	NumObstacles() int
}

func readAnswers(t *testing.T, r snapshotReader, nearest func() ([]Neighbor, error)) snapshotAnswers {
	t.Helper()
	var a snapshotAnswers
	var err error
	if a.rng, err = r.Range(ctx, "P", Pt(2, 2), 140); err != nil {
		t.Fatal(err)
	}
	if a.nn, err = r.NearestNeighbors(ctx, "P", Pt(98, 50), 6); err != nil {
		t.Fatal(err)
	}
	if a.pairs, err = r.ClosestPairs(ctx, "P", "T", 5); err != nil {
		t.Fatal(err)
	}
	if a.dist, err = r.ObstructedDistance(ctx, Pt(0, 0), Pt(100, 100)); err != nil {
		t.Fatal(err)
	}
	if a.strm, err = nearest(); err != nil {
		t.Fatal(err)
	}
	if a.n, err = r.DatasetLen("P"); err != nil {
		t.Fatal(err)
	}
	a.obst = r.NumObstacles()
	return a
}

func snapshotNearest(s *Snapshot, limit int) func() ([]Neighbor, error) {
	return func() ([]Neighbor, error) {
		var out []Neighbor
		for nb, err := range s.Nearest(ctx, "P", Pt(50, 2), WithLimit(limit)) {
			if err != nil {
				return nil, err
			}
			out = append(out, nb)
		}
		return out, nil
	}
}

// churn applies n random point and obstacle mutations, heavy enough to
// rewrite most tree pages several times over.
func churn(t *testing.T, db *Database, rng *rand.Rand, n int) {
	t.Helper()
	var ptIDs, obstIDs []int64
	for op := 0; op < n; op++ {
		switch rng.Intn(4) {
		case 0:
			ids, err := db.InsertPoints("P", Pt(rng.Float64()*200, rng.Float64()*200))
			if err != nil {
				t.Fatal(err)
			}
			ptIDs = append(ptIDs, ids...)
		case 1:
			if len(ptIDs) == 0 {
				continue
			}
			i := rng.Intn(len(ptIDs))
			if err := db.DeletePoints("P", ptIDs[i]); err != nil {
				t.Fatal(err)
			}
			ptIDs = append(ptIDs[:i], ptIDs[i+1:]...)
		case 2:
			// Tiny obstacles in a far-off band so they never overlap the
			// fixed scene (overlap is allowed but keeps geometry simple).
			x := 300 + rng.Float64()*500
			y := 300 + rng.Float64()*500
			ids, err := db.AddObstacleRects(R(x, y, x+1, y+1))
			if err != nil {
				t.Fatal(err)
			}
			obstIDs = append(obstIDs, ids...)
		case 3:
			if len(obstIDs) == 0 {
				continue
			}
			i := rng.Intn(len(obstIDs))
			if err := db.RemoveObstacles(obstIDs[i]); err != nil {
				t.Fatal(err)
			}
			obstIDs = append(obstIDs[:i], obstIDs[i+1:]...)
		}
	}
}

func seedSnapshotDB(t *testing.T, db *Database) {
	t.Helper()
	var p, q []Point
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 120; i++ {
		p = append(p, Pt(rng.Float64()*200, rng.Float64()*200))
	}
	for i := 0; i < 30; i++ {
		q = append(q, Pt(rng.Float64()*200, rng.Float64()*200))
	}
	if err := db.AddDataset("P", p); err != nil {
		t.Fatal(err)
	}
	if err := db.AddDataset("T", q); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotPinnedAnswersStable is the tentpole's core guarantee: a
// pinned snapshot keeps answering byte-identically across heavy mutation of
// the live database — same results, same distances, same order.
func TestSnapshotPinnedAnswersStable(t *testing.T) {
	db := cityDB(t, DefaultOptions())
	seedSnapshotDB(t, db)

	s := db.Snapshot()
	defer s.Close()
	want := readAnswers(t, s, snapshotNearest(s, 10))

	rng := rand.New(rand.NewSource(11))
	churn(t, db, rng, 400)

	got := readAnswers(t, s, snapshotNearest(s, 10))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pinned snapshot's answers changed under churn:\n got %+v\nwant %+v", got, want)
	}
	if n, _ := db.DatasetLen("P"); n == want.n && db.NumObstacles() == want.obst {
		t.Fatal("churn was a no-op; the test tests nothing")
	}

	// The live handle moved on.
	if db.currentVersion().gen == s.Generation() {
		t.Fatal("database generation did not advance")
	}

	// Closing retires the handle.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Range(ctx, "P", Pt(0, 0), 10); !errors.Is(err, ErrSnapshotClosed) {
		t.Fatalf("Range on closed snapshot: %v, want ErrSnapshotClosed", err)
	}
	if _, err := s.DatasetLen("P"); !errors.Is(err, ErrSnapshotClosed) {
		t.Fatalf("DatasetLen on closed snapshot: %v, want ErrSnapshotClosed", err)
	}
	for _, err := range s.Nearest(ctx, "P", Pt(0, 0)) {
		if !errors.Is(err, ErrSnapshotClosed) {
			t.Fatalf("Nearest on closed snapshot: %v, want ErrSnapshotClosed", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotChurnStress races pinned readers against a heavy mutator:
// several goroutines repeatedly re-ask their snapshot and demand
// byte-identical answers while hundreds of mutations commit. Run under
// -race this is the MVCC read-path soundness check.
func TestSnapshotChurnStress(t *testing.T) {
	db := cityDB(t, DefaultOptions())
	seedSnapshotDB(t, db)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := db.Snapshot()
			defer s.Close()
			want := readAnswers(t, s, snapshotNearest(s, 8))
			for {
				select {
				case <-stop:
					return
				default:
				}
				got := readAnswers(t, s, snapshotNearest(s, 8))
				if !reflect.DeepEqual(got, want) {
					t.Errorf("goroutine %d: snapshot answers drifted under churn", g)
					return
				}
			}
		}(g)
	}
	// Unpinned one-shot verbs ride along: they must never error, whatever
	// generation they land on.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.NearestNeighbors(ctx, "P", Pt(float64(i%200), 3), 3); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	rng := rand.New(rand.NewSource(23))
	churn(t, db, rng, 300)
	close(stop)
	wg.Wait()
}

// TestWritersDoNotWaitForReaders pins the lock-structure change: open
// snapshots and mid-flight streams hold no lock a mutator needs, so writes
// commit promptly however many readers are open.
func TestWritersDoNotWaitForReaders(t *testing.T) {
	db := cityDB(t, DefaultOptions())
	seedSnapshotDB(t, db)

	s := db.Snapshot()
	defer s.Close()
	it, err := db.NearestIterator("P", Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Stop()
	if _, ok := it.Next(); !ok {
		t.Fatal(it.Err())
	}
	next, stop := iterPull(db.Nearest(ctx, "P", Pt(9, 9)))
	defer stop()
	if _, _, ok := next(); !ok {
		t.Fatal("stream yielded nothing")
	}

	done := make(chan error, 1)
	go func() {
		for i := 0; i < 50; i++ {
			if _, err := db.InsertPoints("P", Pt(1, 1)); err != nil {
				done <- err
				return
			}
			if _, err := db.AddObstacleRects(R(400+float64(i), 400, 400.5+float64(i), 400.5)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("mutations blocked behind open readers")
	}

	m := db.Metrics()
	if m.MVCC.SnapshotsOpen != 1 {
		t.Errorf("SnapshotsOpen = %d, want 1", m.MVCC.SnapshotsOpen)
	}
	if m.MVCC.COWPageCopies == 0 {
		t.Error("COWPageCopies = 0 after 100 mutations")
	}
	if m.MVCC.PinnedPages == 0 {
		t.Error("PinnedPages = 0 with a snapshot pinned across heavy churn")
	}
	stop()
	for { // drain so the stream goroutine releases its pin before we check
		if _, _, ok := next(); !ok {
			break
		}
	}
	it.Stop()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if m := db.Metrics(); m.MVCC.SnapshotsOpen != 0 {
		t.Errorf("SnapshotsOpen after close = %d, want 0", m.MVCC.SnapshotsOpen)
	}
	if m := db.Metrics(); m.MVCC.PinnedPages != 0 {
		t.Errorf("PinnedPages after all readers closed = %d, want 0", m.MVCC.PinnedPages)
	}
}

// TestSnapshotSurvivesCheckpoints: a checkpoint must not free or rewrite
// pages a pinned snapshot can still read — its frees are deferred through
// the version table — so a snapshot taken on a durable database answers
// identically across interleaved mutations and checkpoints, and the file
// reopens cleanly afterwards.
func TestSnapshotSurvivesCheckpoints(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.obs")
	db, err := Open(path, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	seedSnapshotDB(t, db)
	if _, err := db.AddObstacleRects(R(40, 40, 60, 60)); err != nil {
		t.Fatal(err)
	}

	s := db.Snapshot()
	want := readAnswers(t, s, snapshotNearest(s, 10))

	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 8; round++ {
		churn(t, db, rng, 40)
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		got := readAnswers(t, s, snapshotNearest(s, 10))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: checkpoint disturbed a pinned snapshot", round)
		}
	}
	liveN, err := db.DatasetLen("P")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if n, err := re.DatasetLen("P"); err != nil || n != liveN {
		t.Fatalf("reopened DatasetLen = %d, %v; want %d", n, err, liveN)
	}
	if err := re.obstSet.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBackupUnderChurn: a backup taken from a live, churning database is a
// complete database file answering exactly like the snapshot that produced
// it.
func TestBackupUnderChurn(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "live.obs")
	db, err := Open(path, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	seedSnapshotDB(t, db)
	if _, err := db.AddObstacleRects(R(40, 40, 60, 60)); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(3))
		for {
			select {
			case <-stop:
				return
			default:
			}
			churn(t, db, rng, 10)
		}
	}()

	s := db.Snapshot()
	defer s.Close()
	want := readAnswers(t, s, snapshotNearest(s, 10))
	bpath := filepath.Join(dir, "backup.obs")
	if err := s.Backup(ctx, bpath); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if _, err := os.Stat(bpath + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	bdb, err := Open(bpath, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer bdb.Close()
	if err := bdb.obstSet.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := readAnswers(t, bdb, func() ([]Neighbor, error) {
		var out []Neighbor
		for nb, err := range bdb.Nearest(ctx, "P", Pt(50, 2), WithLimit(10)) {
			if err != nil {
				return nil, err
			}
			out = append(out, nb)
		}
		return out, nil
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("backup answers differ from the snapshot that produced it:\n got %+v\nwant %+v", got, want)
	}

	// The reopened backup is a fully working database: it accepts writes.
	if _, err := bdb.InsertPoints("P", Pt(1, 2)); err != nil {
		t.Fatal(err)
	}

	// Backup of an in-memory database is refused, not mangled.
	mem := cityDB(t, DefaultOptions())
	if err := mem.Backup(ctx, filepath.Join(dir, "mem.obs")); !errors.Is(err, ErrNotPersistent) {
		t.Fatalf("in-memory Backup: %v, want ErrNotPersistent", err)
	}
}

// iterPull adapts a Seq2 to a pull-style next/stop pair (iter.Pull2 without
// the import ceremony elsewhere in the tests).
func iterPull(seq func(func(Neighbor, error) bool)) (func() (Neighbor, error, bool), func()) {
	ch := make(chan struct {
		nb  Neighbor
		err error
	})
	stopCh := make(chan struct{})
	go func() {
		defer close(ch)
		seq(func(nb Neighbor, err error) bool {
			select {
			case ch <- struct {
				nb  Neighbor
				err error
			}{nb, err}:
				return true
			case <-stopCh:
				return false
			}
		})
	}()
	var once sync.Once
	stop := func() { once.Do(func() { close(stopCh) }) }
	next := func() (Neighbor, error, bool) {
		v, ok := <-ch
		return v.nb, v.err, ok
	}
	return next, stop
}
