package obstacles

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/pagefile"
	"repro/internal/rtree"
	"repro/internal/wal"
)

// ErrDegraded marks errors returned by mutators while the database is in
// degraded mode: a durable-commit failure poisoned the handle, reads keep
// serving the last published generation, and every mutation fails fast until
// in-place recovery (Recover, or the Options.AutoRecover supervisor) rebuilds
// the durable state from disk. Match with errors.Is; errors.As against
// *DegradedError recovers the original fault and the recovery status.
var ErrDegraded = errors.New("obstacles: database is degraded (read-only)")

// DegradedError is the typed error degraded-mode mutations return: the first
// durable fault that poisoned the handle and a snapshot of the recovery
// supervisor's progress at the time of the call. It matches both ErrDegraded
// and — for compatibility with the pre-recovery contract — ErrNeedsReopen
// under errors.Is.
type DegradedError struct {
	// Cause is the first durable failure, preserved verbatim across every
	// later mutation attempt.
	Cause error
	// Recovery is the recovery status when the mutation was rejected; when
	// Recovery.NextRetry is set, the supervisor will attempt recovery then.
	Recovery RecoveryStats
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("%v: %v", ErrDegraded, e.Cause)
}

func (e *DegradedError) Unwrap() []error {
	return []error{ErrDegraded, ErrNeedsReopen, e.Cause}
}

// RecoveryStats describes degraded mode and the in-place recovery machinery,
// as reported by Database.RecoveryStats, /debug/vars and the degraded-mode
// error itself.
type RecoveryStats struct {
	// Degraded reports whether the handle is currently poisoned (mutations
	// fail, reads serve the last published generation).
	Degraded bool `json:"degraded"`
	// Cause is the first durable fault, empty when healthy.
	Cause string `json:"cause,omitempty"`
	// AutoRecover reports whether the background supervisor is enabled.
	AutoRecover bool `json:"auto_recover"`
	// Attempts counts recovery attempts (manual and automatic); Recoveries
	// counts the ones that restored a writable database.
	Attempts   uint64 `json:"attempts"`
	Recoveries uint64 `json:"recoveries"`
	// LastError is the most recent failed attempt's error, empty when the
	// last attempt succeeded or none ran yet.
	LastError string `json:"last_error,omitempty"`
	// LastAttempt is when the last attempt started; NextRetry when the
	// supervisor will try again (zero when no retry is scheduled).
	LastAttempt time.Time `json:"last_attempt"`
	NextRetry   time.Time `json:"next_retry"`
}

// recoveryStatsLocked snapshots the recovery status. Caller holds s.cmu.
func (s *durableStore) recoveryStatsLocked() RecoveryStats {
	rs := RecoveryStats{
		AutoRecover: s.autoRecover,
		Attempts:    s.recoverAttempts,
		Recoveries:  s.recoverCount,
		LastAttempt: s.recoverLast,
		NextRetry:   s.recoverNext,
	}
	if s.broken != nil {
		rs.Degraded = true
		rs.Cause = s.broken.Error()
	}
	if s.recoverLastErr != nil {
		rs.LastError = s.recoverLastErr.Error()
	}
	return rs
}

// degraded wraps the poison cause into the typed degraded-mode error.
func (s *durableStore) degraded(cause error) error {
	s.cmu.Lock()
	rs := s.recoveryStatsLocked()
	s.cmu.Unlock()
	return &DegradedError{Cause: cause, Recovery: rs}
}

// degradedCheckLocked fails a mutation fast when the handle is poisoned,
// before it touches any in-memory state — degraded reads must keep answering
// exactly the last published generation, so a rejected mutation must not
// publish anything. Callers hold the updateMu write side.
func (db *Database) degradedCheckLocked() error {
	s := db.store
	if s == nil {
		return nil
	}
	if err := s.brokenErr(); err != nil {
		return s.degraded(err)
	}
	return nil
}

// Degraded reports whether the database is in degraded (read-only) mode.
// Always false for in-memory databases.
func (db *Database) Degraded() bool {
	return db.store != nil && db.store.brokenErr() != nil
}

// RecoveryStats returns the degraded-mode and recovery status. The zero
// value for in-memory databases.
func (db *Database) RecoveryStats() RecoveryStats {
	s := db.store
	if s == nil {
		return RecoveryStats{}
	}
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return s.recoveryStatsLocked()
}

// Recover attempts in-place recovery of a degraded database: the poisoned
// generation's overlay is detached (readers pinned to published generations
// keep answering from the frozen copy), the WAL is re-opened and its
// committed prefix replayed onto the data file, the trees re-attach at the
// recovered roots, and a fresh durable layer is swapped in under the update
// lock. Acknowledged commits all survive; mutations that failed (or were
// published in memory but never acknowledged) are discarded. The attempt
// finishes with a full checkpoint — a durability probe — so a database that
// recovers is genuinely writable, not just optimistically unpoisoned.
//
// A no-op when the database is healthy or in-memory. On failure the database
// stays degraded and Recover can be called again; Options.AutoRecover runs
// exactly this under capped exponential backoff.
func (db *Database) Recover() error {
	s := db.store
	if s == nil {
		return nil
	}
	db.updateMu.Lock()
	defer db.updateMu.Unlock()
	if s.closed {
		return ErrDatabaseClosed
	}
	if s.brokenErr() == nil {
		s.cmu.Lock()
		s.recoverNext = time.Time{}
		s.cmu.Unlock()
		return nil
	}
	s.cmu.Lock()
	s.recoverAttempts++
	s.recoverLast = time.Now()
	s.cmu.Unlock()
	start := time.Now()
	err := db.recoverLocked()
	s.cmu.Lock()
	s.recoverLastErr = err
	if err == nil {
		s.recoverCount++
		s.recoverNext = time.Time{}
	}
	s.cmu.Unlock()
	if err == nil {
		db.tel.recoverySeconds.ObserveDuration(time.Since(start))
	}
	return err
}

// recoverLocked is one recovery attempt. Callers hold the updateMu write
// side and have verified the handle is poisoned and not closed.
func (db *Database) recoverLocked() error {
	s := db.store
	// Resolve every parked ticket first: with the handle poisoned the
	// committer fails tickets without touching the WAL, so after this drain
	// the log has no concurrent user and the queue stays empty (staging
	// requires updateMu, which we hold).
	db.flushCommitsLocked()

	// Freeze the poisoned generation's overlay into a self-contained
	// snapshot. Readers pinned to published generations read through it, so
	// replay and checkpoint below may rewrite the data file underneath them.
	s.tx.Detach(s.fs.Frontier())

	// Fresh WAL handle over the same file: the old log's buffered state is
	// unusable after a failed append, and the WAL file carries no lock (the
	// data-file flock is the handle's exclusivity token). Closing the old fd
	// twice across retries is harmless.
	_ = s.log.Load().Close()
	wf, wsize, err := wal.OpenOSFile(s.path + ".wal")
	if err != nil {
		return fmt.Errorf("obstacles: recovery reopening WAL: %w", err)
	}
	if s.hooks.wrapWAL != nil {
		wf = s.hooks.wrapWAL(wf)
	}
	nlog := wal.NewLog(wf, wsize)
	installed := false
	defer func() {
		if !installed {
			nlog.Close()
		}
	}()

	// The disk superblock is the recovery root — the in-memory copy may
	// describe a checkpoint that never fully reached the platters.
	sb, err := s.fs.ReadSuperblock()
	if err != nil {
		return fmt.Errorf("obstacles: recovery reading superblock: %w", err)
	}
	pageSize := sb.PageSize

	// Redo pass, as Open does — with one extra piece of knowledge a cold
	// open lacks: the last seq whose commit fsync was acknowledged to a
	// caller. Records past it were appended by commits that reported
	// failure; replaying them would resurrect mutations their callers were
	// told did not happen, so the unacknowledged suffix is discarded.
	s.cmu.Lock()
	ackSeq := s.durableSeq
	s.cmu.Unlock()
	var (
		events  []replayEvent
		logged  = make(map[pagefile.PageID]struct{})
		lastSeq uint64
	)
	err = nlog.Replay(func(tx wal.Tx) error {
		if tx.Seq > ackSeq {
			return nil
		}
		for _, p := range tx.Pages {
			if len(p.Data) != pageSize {
				return fmt.Errorf("wal page %d has %d bytes, page size is %d", p.ID, len(p.Data), pageSize)
			}
			if err := s.fs.WritePage(pagefile.PageID(p.ID), p.Data); err != nil {
				return err
			}
			logged[pagefile.PageID(p.ID)] = struct{}{}
		}
		ev := replayEvent{seq: tx.Seq}
		if tx.Meta != nil {
			ev.meta = append([]byte(nil), tx.Meta...)
		}
		for _, d := range tx.Deltas {
			ev.deltas = append(ev.deltas, append([]byte(nil), d...))
		}
		events = append(events, ev)
		lastSeq = tx.Seq
		return nil
	})
	if err != nil {
		return fmt.Errorf("obstacles: recovery replaying WAL: %w", err)
	}
	deltaStart := 0
	for i, ev := range events {
		if ev.meta != nil {
			nsb, err := pagefile.DecodeSuperblock(ev.meta)
			if err != nil {
				return fmt.Errorf("obstacles: recovery decoding superblock: %w", err)
			}
			sb = nsb
			deltaStart = i + 1
		}
	}

	state := &catalog.State{}
	var obst *catalog.Obstacles
	if sb.State.Root != pagefile.InvalidPage {
		blob, err := catalog.ReadBlob(s.fs, sb.State)
		if err != nil {
			return fmt.Errorf("obstacles: recovery reading state catalog: %w", err)
		}
		if state, err = catalog.DecodeState(blob); err != nil {
			return err
		}
	}
	if sb.Obstacles.Root != pagefile.InvalidPage {
		blob, err := catalog.ReadBlob(s.fs, sb.Obstacles)
		if err != nil {
			return fmt.Errorf("obstacles: recovery reading obstacle catalog: %w", err)
		}
		if obst, err = catalog.DecodeObstacles(blob); err != nil {
			return err
		}
	}
	next := sb.Next
	for _, ev := range events[deltaStart:] {
		if ev.seq <= sb.Seq {
			continue
		}
		for _, raw := range ev.deltas {
			d, err := catalog.DecodeDelta(raw)
			if err != nil {
				return fmt.Errorf("obstacles: recovery decoding group %d delta: %w", ev.seq, err)
			}
			if obst, err = d.Apply(state, obst); err != nil {
				return fmt.Errorf("obstacles: recovery applying group %d delta: %w", ev.seq, err)
			}
			next = d.Next
		}
	}
	s.fs.SetAllocState(next, state.PageFree)

	var st pagefile.Storage = s.fs
	if s.hooks.wrapStorage != nil {
		st = s.hooks.wrapStorage(s.fs)
	}
	ntx := pagefile.NewTxStorage(st)
	topts := rtree.Options{PageSize: pageSize, Storage: ntx}

	// Rebuild the obstacle set at a generation strictly above every epoch
	// the old in-memory state ever published, so pinned readers (and the
	// graph cache's epoch bookkeeping) can never confuse a pre-fault epoch
	// with a post-recovery one.
	obstGen := db.obstSet.Generation() + 1
	var obstSet *core.ObstacleSet
	if obst == nil {
		fresh, err := core.NewObstacleSet(topts, nil, false)
		if err != nil {
			return fmt.Errorf("obstacles: recovery building obstacle index: %w", err)
		}
		if obstSet, err = core.AttachObstacleSet(fresh.Tree(), map[int64][]geom.Point{}, 0, obstGen); err != nil {
			return err
		}
	} else {
		if g := obst.Generation + 1; g > obstGen {
			obstGen = g
		}
		tree, err := rtree.Attach(topts, obst.Tree.Root, obst.Tree.Height, obst.Tree.Size)
		if err != nil {
			return fmt.Errorf("obstacles: recovery attaching obstacle tree: %w", err)
		}
		if obstSet, err = core.AttachObstacleSet(tree, obst.Polys, obst.IDBound, obstGen); err != nil {
			return err
		}
	}
	sizeBuffer(obstSet.Tree(), db.opts.BufferFraction)
	obstSet.EnableCOW()

	nds := make(map[string]*core.PointSet, len(state.Datasets))
	for _, ds := range state.Datasets {
		tree, err := rtree.Attach(topts, ds.Tree.Root, ds.Tree.Height, ds.Tree.Size)
		if err != nil {
			return fmt.Errorf("obstacles: recovery attaching dataset %q: %w", ds.Name, err)
		}
		set, err := core.AttachPointSet(tree, ds.IDBound)
		if err != nil {
			return fmt.Errorf("obstacles: recovery rebuilding dataset %q: %w", ds.Name, err)
		}
		sizeBuffer(tree, db.opts.BufferFraction)
		set.EnableCOW()
		nds[ds.Name] = set
	}

	// Swap. From here the new state is live: the fresh log is installed, the
	// recovered sets replace the run-ahead in-memory ones (mutators
	// re-resolve their dataset under updateMu, so none can write to an
	// orphaned tree), and the generation moves strictly forward so the new
	// version outranks everything published before the fault.
	installed = true
	db.mu.Lock()
	db.obstSet = obstSet
	db.datasets = nds
	db.mu.Unlock()
	db.engine.ReplaceObstacles(obstSet)
	db.gen.Add(1)

	seq := sb.Seq
	if lastSeq > seq {
		seq = lastSeq
	}
	s.st, s.tx = st, ntx
	s.log.Store(nlog)
	db.installWALHook(nlog)
	s.super = sb
	s.seq = seq
	s.logged = logged
	s.dirtyDatasets = make(map[string]struct{})
	s.obstAdds, s.obstRemoves = nil, nil
	s.obstDirty = true
	s.lastCheckpointErr = nil
	s.cmu.Lock()
	s.broken = nil
	s.durableSeq = seq
	s.cmu.Unlock()
	db.publishVersion()

	// Durability probe: fold the replayed WAL into the data file and
	// truncate it. A checkpoint exercises page write-back, both data fsyncs
	// and the WAL truncation, so passing it means the device genuinely
	// accepts writes again; failing it re-poisons the handle and the next
	// attempt starts over from the (unchanged) disk state.
	if err := db.checkpointLocked(); err != nil {
		s.poison(err)
		return fmt.Errorf("obstacles: recovery checkpoint: %w", err)
	}
	return nil
}

// startRecovery launches the auto-recovery supervisor (Options.AutoRecover).
func (db *Database) startRecovery() {
	db.recoverStop = make(chan struct{})
	db.recoverDone = make(chan struct{})
	go db.recoveryLoop()
}

// stopRecovery signals the supervisor to exit. Idempotent; safe when the
// supervisor was never started.
func (db *Database) stopRecovery() {
	if db.recoverStop != nil {
		db.recoverStopOnce.Do(func() { close(db.recoverStop) })
	}
}

// recoveryLoop is the auto-recovery supervisor: woken by the first durable
// fault, it retries in-place recovery under capped exponential backoff with
// jitter until the database is writable again, then goes back to sleep until
// the next fault. Exits at Close.
func (db *Database) recoveryLoop() {
	defer close(db.recoverDone)
	s := db.store
	for {
		select {
		case <-db.recoverStop:
			return
		case <-s.degradedCh:
		}
		backoff := db.opts.RecoverBackoff
		for {
			// Jitter on [backoff/2, backoff] decorrelates retry storms when
			// many handles share a struggling device.
			d := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
			s.cmu.Lock()
			s.recoverNext = time.Now().Add(d)
			s.cmu.Unlock()
			t := time.NewTimer(d)
			select {
			case <-db.recoverStop:
				t.Stop()
				return
			case <-t.C:
			}
			err := db.Recover()
			if err == nil {
				break
			}
			if errors.Is(err, ErrDatabaseClosed) {
				return
			}
			backoff *= 2
			if backoff > db.opts.RecoverMaxBackoff {
				backoff = db.opts.RecoverMaxBackoff
			}
		}
	}
}

// faultWALFile interposes a programmable fault injector between the log and
// its file — the WAL half of the chaos harness (Options.Chaos); the injector
// instruments the data file directly (FileStorage.SetInjector).
type faultWALFile struct {
	f   wal.File
	inj *pagefile.Injector
}

func (w *faultWALFile) Write(p []byte) (int, error) {
	if inj := w.inj.Check(pagefile.OpWALWrite); inj != nil {
		if inj.Torn > 0 && inj.Torn < len(p) {
			n, _ := w.f.Write(p[:inj.Torn])
			return n, fmt.Errorf("%w: torn WAL write (%d of %d bytes)", inj.Err, n, len(p))
		}
		return 0, fmt.Errorf("%w: WAL write of %d bytes", inj.Err, len(p))
	}
	return w.f.Write(p)
}

func (w *faultWALFile) ReadAt(p []byte, off int64) (int, error) {
	return w.f.ReadAt(p, off)
}

func (w *faultWALFile) Sync() error {
	if inj := w.inj.Check(pagefile.OpWALSync); inj != nil {
		return fmt.Errorf("%w: WAL fsync", inj.Err)
	}
	return w.f.Sync()
}

func (w *faultWALFile) Truncate(size int64) error { return w.f.Truncate(size) }

func (w *faultWALFile) Close() error { return w.f.Close() }
