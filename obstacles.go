package obstacles

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/pagefile"
	"repro/internal/rtree"
)

// Options configures a Database.
type Options struct {
	// PageSize is the R-tree node/page size in bytes (default 4096, the
	// paper's setting; 8192 reproduces the paper's fanout of ~204 with
	// 8-byte coordinates).
	PageSize int
	// BufferFraction sizes each tree's LRU buffer as a fraction of its
	// pages (default 0.10, the paper's setting).
	BufferFraction float64
	// NaiveVisibility disables the rotational plane-sweep [SS84] in favor
	// of a naive per-pair visibility check; slower, but useful as a
	// cross-check and for heavily overlapping obstacle sets.
	NaiveVisibility bool
	// InsertLoad builds trees by repeated R* insertion instead of STR bulk
	// loading; slower to build, exercise for dynamic workloads.
	InsertLoad bool
	// GraphCacheSize is the number of expanded visibility-graph states the
	// engine retains for reuse across batch-distance queries, clustering
	// neighborhoods and join seeds (default 8; negative disables caching).
	GraphCacheSize int
}

// DefaultOptions returns the configuration used in the paper's experiments.
func DefaultOptions() Options {
	return Options{PageSize: pagefile.DefaultPageSize, BufferFraction: 0.10}
}

func (o Options) withDefaults() Options {
	if o.PageSize <= 0 {
		o.PageSize = pagefile.DefaultPageSize
	}
	if o.BufferFraction <= 0 || o.BufferFraction > 1 {
		o.BufferFraction = 0.10
	}
	if o.GraphCacheSize == 0 {
		o.GraphCacheSize = 8
	}
	return o
}

func (o Options) treeOptions() rtree.Options {
	return rtree.Options{PageSize: o.PageSize}
}

// Neighbor is one entity returned by a range or nearest-neighbor query.
type Neighbor struct {
	// ID is the entity's index in the dataset it was added with.
	ID int64
	// Point is the entity's location.
	Point Point
	// Distance is the obstructed distance from the query point.
	Distance float64
}

// Pair is one pair returned by a join or closest-pair query.
type Pair struct {
	// ID1 and ID2 index the first and second dataset of the query.
	ID1, ID2 int64
	// Distance is the obstructed distance between the two entities.
	Distance float64
}

// Unreachable is the distance reported when no obstacle-avoiding path
// exists (an entity sealed off by obstacles, or strictly inside one).
// Batch distances report it per target, and clustering assigns such
// entities NoiseCluster: a sealed-off point can belong to no ε-neighborhood
// and no medoid can serve it, so it becomes a noise singleton rather than
// poisoning a cluster's cost.
var Unreachable = math.Inf(1)

// TreeStats reports page-level I/O counters of one R-tree.
type TreeStats struct {
	// PageAccesses counts reads that missed the LRU buffer — the metric the
	// paper's experiments plot.
	PageAccesses uint64
	// LogicalReads counts all node reads, including buffer hits.
	LogicalReads uint64
	// BufferHits counts reads served by the buffer.
	BufferHits uint64
	// Pages is the current size of the tree in pages.
	Pages int
}

// Database holds one obstacle set and any number of named point datasets,
// all indexed by R*-trees over simulated disk pages with LRU buffers. It is
// not safe for concurrent use.
type Database struct {
	opts     Options
	engine   *core.Engine
	obstSet  *core.ObstacleSet
	datasets map[string]*core.PointSet
}

// NewDatabase builds a database over polygonal obstacles. Obstacles should
// not overlap each other's interiors (touching is fine); see
// Options.NaiveVisibility for heavily overlapping data.
func NewDatabase(polys []Polygon, opts Options) (*Database, error) {
	opts = opts.withDefaults()
	obstSet, err := core.NewObstacleSet(opts.treeOptions(), polys, !opts.InsertLoad)
	if err != nil {
		return nil, fmt.Errorf("obstacles: building obstacle index: %w", err)
	}
	sizeBuffer(obstSet.Tree(), opts.BufferFraction)
	eng := core.NewEngine(obstSet, core.EngineOptions{UseSweep: !opts.NaiveVisibility})
	if opts.GraphCacheSize > 0 {
		eng.EnableGraphCache(opts.GraphCacheSize)
	}
	return &Database{
		opts:     opts,
		engine:   eng,
		obstSet:  obstSet,
		datasets: make(map[string]*core.PointSet),
	}, nil
}

// NewDatabaseFromRects builds a database with rectangular obstacles, the
// shape of the paper's street-MBR evaluation dataset.
func NewDatabaseFromRects(rects []Rect, opts Options) (*Database, error) {
	polys := make([]Polygon, len(rects))
	for i, r := range rects {
		if r.IsEmpty() {
			return nil, fmt.Errorf("obstacles: obstacle %d is empty", i)
		}
		polys[i] = RectPolygon(r)
	}
	return NewDatabase(polys, opts)
}

func sizeBuffer(t *rtree.Tree, fraction float64) {
	pages := int(math.Ceil(float64(t.PageFile().NumPages()) * fraction))
	if pages < 1 {
		pages = 1
	}
	// SetBufferPages only errors on write-back failures, impossible while
	// shrinking a read-only tree's clean buffer.
	_ = t.PageFile().SetBufferPages(pages)
}

// AddDataset indexes a named point dataset. Entity i gets ID int64(i).
func (db *Database) AddDataset(name string, pts []Point) error {
	if _, ok := db.datasets[name]; ok {
		return fmt.Errorf("obstacles: dataset %q already exists", name)
	}
	ps, err := core.NewPointSet(db.opts.treeOptions(), pts, !db.opts.InsertLoad)
	if err != nil {
		return fmt.Errorf("obstacles: building dataset %q: %w", name, err)
	}
	sizeBuffer(ps.Tree(), db.opts.BufferFraction)
	db.datasets[name] = ps
	return nil
}

// Datasets returns the names of the datasets added so far, sorted.
func (db *Database) Datasets() []string {
	names := make([]string, 0, len(db.datasets))
	for n := range db.datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NumObstacles returns the obstacle count.
func (db *Database) NumObstacles() int { return db.obstSet.Len() }

// DatasetLen returns the number of entities in a dataset (0 if absent).
func (db *Database) DatasetLen(name string) int {
	if ps, ok := db.datasets[name]; ok {
		return ps.Len()
	}
	return 0
}

func (db *Database) dataset(name string) (*core.PointSet, error) {
	ps, ok := db.datasets[name]
	if !ok {
		return nil, fmt.Errorf("obstacles: unknown dataset %q", name)
	}
	return ps, nil
}

// Range returns all entities of the dataset within obstructed distance
// radius of q, sorted by distance (the OR algorithm of the paper).
func (db *Database) Range(dataset string, q Point, radius float64) ([]Neighbor, error) {
	ps, err := db.dataset(dataset)
	if err != nil {
		return nil, err
	}
	res, _, err := db.engine.Range(ps, q, radius)
	if err != nil {
		return nil, err
	}
	return toNeighbors(res), nil
}

// NearestNeighbors returns the k entities of the dataset with the smallest
// obstructed distance from q, sorted by it (the ONN algorithm).
func (db *Database) NearestNeighbors(dataset string, q Point, k int) ([]Neighbor, error) {
	ps, err := db.dataset(dataset)
	if err != nil {
		return nil, err
	}
	res, _, err := db.engine.NearestNeighbors(ps, q, k)
	if err != nil {
		return nil, err
	}
	return toNeighbors(res), nil
}

// DistanceJoin returns all pairs (s, t) from the two datasets within
// obstructed distance dist of each other, sorted by distance (the ODJ
// algorithm).
func (db *Database) DistanceJoin(dataset1, dataset2 string, dist float64) ([]Pair, error) {
	s, err := db.dataset(dataset1)
	if err != nil {
		return nil, err
	}
	t, err := db.dataset(dataset2)
	if err != nil {
		return nil, err
	}
	res, _, err := db.engine.DistanceJoin(s, t, dist)
	if err != nil {
		return nil, err
	}
	return toPairs(res), nil
}

// ClosestPairs returns the k pairs from the two datasets with the smallest
// obstructed distance, sorted by it (the OCP algorithm).
func (db *Database) ClosestPairs(dataset1, dataset2 string, k int) ([]Pair, error) {
	s, err := db.dataset(dataset1)
	if err != nil {
		return nil, err
	}
	t, err := db.dataset(dataset2)
	if err != nil {
		return nil, err
	}
	res, _, err := db.engine.ClosestPairs(s, t, k)
	if err != nil {
		return nil, err
	}
	return toPairs(res), nil
}

// ObstructedDistance returns the length of the shortest obstacle-avoiding
// path from a to b (Unreachable when none exists).
func (db *Database) ObstructedDistance(a, b Point) (float64, error) {
	return db.engine.ObstructedDistance(a, b)
}

// ObstructedPath returns a shortest obstacle-avoiding route from a to b as
// a sequence of waypoints (a first, b last, bending only at obstacle
// corners) and its total length. The path is nil and the length Unreachable
// when no route exists.
func (db *Database) ObstructedPath(a, b Point) ([]Point, float64, error) {
	return db.engine.ObstructedPath(a, b)
}

// InsideObstacle reports whether p lies strictly inside an obstacle. Such
// points can reach nothing: queries from them return no results and their
// distances are Unreachable.
func (db *Database) InsideObstacle(p Point) (bool, error) {
	return db.engine.InsideObstacle(p)
}

// ObstacleTreeStats returns the I/O counters of the obstacle R-tree.
func (db *Database) ObstacleTreeStats() TreeStats {
	return treeStats(db.obstSet.Tree())
}

// DatasetTreeStats returns the I/O counters of a dataset's R-tree.
func (db *Database) DatasetTreeStats(name string) (TreeStats, error) {
	ps, err := db.dataset(name)
	if err != nil {
		return TreeStats{}, err
	}
	return treeStats(ps.Tree()), nil
}

// ResetStats zeroes all I/O counters (buffers stay warm).
func (db *Database) ResetStats() {
	db.obstSet.Tree().PageFile().ResetStats()
	for _, ps := range db.datasets {
		ps.Tree().PageFile().ResetStats()
	}
}

func treeStats(t *rtree.Tree) TreeStats {
	st := t.PageFile().Stats()
	return TreeStats{
		PageAccesses: st.PhysicalReads,
		LogicalReads: st.LogicalReads,
		BufferHits:   st.BufferHits,
		Pages:        t.PageFile().NumPages(),
	}
}

func toNeighbors(rs []core.Result) []Neighbor {
	out := make([]Neighbor, len(rs))
	for i, r := range rs {
		out[i] = Neighbor{ID: r.ID, Point: r.Pt, Distance: r.Dist}
	}
	return out
}

func toPairs(ps []core.JoinPair) []Pair {
	out := make([]Pair, len(ps))
	for i, p := range ps {
		out[i] = Pair{ID1: p.SID, ID2: p.TID, Distance: p.Dist}
	}
	return out
}
