package obstacles

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/pagefile"
	"repro/internal/rtree"
	"repro/internal/telemetry"
)

// Options configures a Database.
type Options struct {
	// PageSize is the R-tree node/page size in bytes (default 4096, the
	// paper's setting; 8192 reproduces the paper's fanout of ~204 with
	// 8-byte coordinates).
	PageSize int
	// BufferFraction sizes each tree's LRU buffer as a fraction of its
	// pages (default 0.10, the paper's setting).
	BufferFraction float64
	// NaiveVisibility disables the rotational plane-sweep [SS84] in favor
	// of a naive per-pair visibility check; slower, but useful as a
	// cross-check and for heavily overlapping obstacle sets.
	NaiveVisibility bool
	// InsertLoad builds trees by repeated R* insertion instead of STR bulk
	// loading; slower to build, exercise for dynamic workloads.
	InsertLoad bool
	// GraphCacheSize is the number of expanded visibility-graph states the
	// engine retains for reuse across batch-distance queries, clustering
	// neighborhoods and join seeds (default 8; negative disables caching).
	// Concurrent queries on overlapping regions serialize on the shared
	// cached graph; disjoint regions run fully in parallel.
	GraphCacheSize int
	// WALCheckpointBytes is the write-ahead-log size at which a durable
	// database (see Open) checkpoints automatically after a commit (default
	// 4 MiB; negative disables auto-checkpointing, leaving the WAL to grow
	// until an explicit Checkpoint or Close). Ignored by in-memory
	// databases.
	WALCheckpointBytes int64
	// GroupCommitMaxBatch caps how many commits one WAL fsync may cover
	// when concurrent mutators batch (default 64; 0 selects the default).
	// Negative selects fsync-per-commit legacy mode: every mutator writes
	// and fsyncs its own commit while still holding the update lock — the
	// pre-group-commit protocol, useful as a baseline and for minimum
	// single-writer latency jitter. Ignored by in-memory databases.
	GroupCommitMaxBatch int
	// GroupCommitMaxDelay bounds the committer's absorb window: how long
	// it may keep collecting straggler commits before fsyncing a batch.
	// The window always ends early once the queue quiesces (no new commit
	// arrives between polls), so this is a cap, not a fixed delay. The
	// default 0 is adaptive: the cap is half the measured fsync cost, and
	// the committer only waits at all once concurrent commits have been
	// observed — a lone writer never waits. A positive value replaces the
	// adaptive cap and makes the committer willing to absorb even before
	// contention is observed (useful on lightly loaded boxes where
	// commits rarely overlap an fsync); negative selects fsync-per-commit
	// legacy mode. Ignored by in-memory databases.
	GroupCommitMaxDelay time.Duration
	// DebugAddr, when non-empty, starts an HTTP debug listener on the
	// address (e.g. "localhost:6060") for the database's lifetime. It
	// serves the full telemetry registry in the Prometheus text exposition
	// format at /metrics, the same numbers as JSON at /debug/vars, and the
	// standard pprof profiles under /debug/pprof/. The listener stops at
	// Close. "host:0" picks a free port; DebugAddr() reports the bound
	// address.
	DebugAddr string
	// SlowQueryThreshold, when positive, enables the slow-query log: every
	// query verb whose wall time reaches the threshold is recorded through
	// SlowQueryLogger with its verb, timing, work counters and a span
	// trace of its lifecycle (graph builds, obstacle scans). Tracing is
	// only attached to sessions when the threshold is set, so the query
	// hot path is unaffected while disabled.
	SlowQueryThreshold time.Duration
	// SlowQueryLogger receives slow-query records; nil selects
	// slog.Default().
	SlowQueryLogger *slog.Logger
	// TraceSampleRate, in [0, 1], is the probability a normal (neither
	// failed nor slow) query's trace is retained by the flight recorder
	// behind /debug/traces. Error traces and traces at or over
	// SlowQueryThreshold are always retained. 0 disables sampling; queries
	// are then only traced at all when SlowQueryThreshold is set or the
	// caller's context already carries a span.
	TraceSampleRate float64
	// AutoRecover starts a background supervisor on a durable database (see
	// Open) that, whenever a durable-commit failure puts the handle in
	// degraded mode, retries in-place recovery under capped exponential
	// backoff with jitter until mutations flow again. While degraded, reads
	// keep serving the last published generation and mutations fail fast
	// with a *DegradedError. Ignored by in-memory databases.
	AutoRecover bool
	// RecoverBackoff is the supervisor's initial retry delay (default
	// 500ms); RecoverMaxBackoff caps the exponential growth (default 30s).
	// Each scheduled retry is jittered on [backoff/2, backoff]. Negative
	// values are rejected.
	RecoverBackoff    time.Duration
	RecoverMaxBackoff time.Duration
	// Chaos, when non-nil, arms a programmable fault injector across the
	// whole durable path of an Open database: page reads/writes and data
	// fsyncs on the data file, writes and fsyncs on the write-ahead log.
	// Faults, fault windows and latency are programmed on the injector
	// (see pagefile.Injector and pagefile.ParseFaultSpec); injected errors
	// flow through the same poison/degrade/recover machinery as real device
	// failures. For crash drills and tests; ignored by in-memory databases.
	Chaos *pagefile.Injector
}

// DefaultOptions returns the configuration used in the paper's experiments.
func DefaultOptions() Options {
	return Options{PageSize: pagefile.DefaultPageSize, BufferFraction: 0.10}
}

// validate rejects out-of-range option values with a descriptive error.
// Zero values mean "use the default" and pass; anything else out of range is
// a caller bug that used to be silently coerced to the paper's defaults.
func (o Options) validate() error {
	if o.PageSize < 0 {
		return fmt.Errorf("obstacles: Options.PageSize %d is negative; use 0 for the default (%d)", o.PageSize, pagefile.DefaultPageSize)
	}
	// Written to reject NaN too: NaN fails every comparison, so a plain
	// range check would wave it through into the buffer sizing.
	if o.BufferFraction != 0 && !(o.BufferFraction > 0 && o.BufferFraction <= 1) {
		return fmt.Errorf("obstacles: Options.BufferFraction %g out of range (0, 1]; use 0 for the default (0.10)", o.BufferFraction)
	}
	if o.TraceSampleRate != 0 && !(o.TraceSampleRate > 0 && o.TraceSampleRate <= 1) {
		return fmt.Errorf("obstacles: Options.TraceSampleRate %g out of range [0, 1]", o.TraceSampleRate)
	}
	if o.RecoverBackoff < 0 {
		return fmt.Errorf("obstacles: Options.RecoverBackoff %v is negative; use 0 for the default (500ms)", o.RecoverBackoff)
	}
	if o.RecoverMaxBackoff < 0 {
		return fmt.Errorf("obstacles: Options.RecoverMaxBackoff %v is negative; use 0 for the default (30s)", o.RecoverMaxBackoff)
	}
	return nil
}

func (o Options) withDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = pagefile.DefaultPageSize
	}
	if o.BufferFraction == 0 {
		o.BufferFraction = 0.10
	}
	if o.GraphCacheSize == 0 {
		o.GraphCacheSize = 8
	}
	if o.WALCheckpointBytes == 0 {
		o.WALCheckpointBytes = 4 << 20
	}
	if o.GroupCommitMaxBatch == 0 {
		o.GroupCommitMaxBatch = 64
	}
	if o.RecoverBackoff == 0 {
		o.RecoverBackoff = 500 * time.Millisecond
	}
	if o.RecoverMaxBackoff == 0 {
		o.RecoverMaxBackoff = 30 * time.Second
	}
	if o.RecoverMaxBackoff < o.RecoverBackoff {
		o.RecoverMaxBackoff = o.RecoverBackoff
	}
	return o
}

func (o Options) treeOptions() rtree.Options {
	return rtree.Options{PageSize: o.PageSize}
}

// Neighbor is one entity returned by a range or nearest-neighbor query.
type Neighbor struct {
	// ID is the entity's index in the dataset it was added with.
	ID int64
	// Point is the entity's location.
	Point Point
	// Distance is the obstructed distance from the query point.
	Distance float64
}

// Pair is one pair returned by a join or closest-pair query.
type Pair struct {
	// ID1 and ID2 index the first and second dataset of the query.
	ID1, ID2 int64
	// Distance is the obstructed distance between the two entities.
	Distance float64
}

// Unreachable is the distance reported when no obstacle-avoiding path
// exists (an entity sealed off by obstacles, or strictly inside one).
// Batch distances report it per target, and clustering assigns such
// entities NoiseCluster: a sealed-off point can belong to no ε-neighborhood
// and no medoid can serve it, so it becomes a noise singleton rather than
// poisoning a cluster's cost.
var Unreachable = math.Inf(1)

// TreeStats reports page-level I/O counters of one R-tree. The counters are
// process-global and shared by all queries; prefer WithStats for per-query
// measurement under concurrency.
type TreeStats struct {
	// PageAccesses counts reads that missed the LRU buffer — the metric the
	// paper's experiments plot.
	PageAccesses uint64
	// LogicalReads counts all node reads, including buffer hits.
	LogicalReads uint64
	// BufferHits counts reads served by the buffer.
	BufferHits uint64
	// Pages is the current size of the tree in pages.
	Pages int
}

// ErrConcurrentUpdate was reported by incremental streams overtaken by a
// mutation before the database became multi-versioned. Every read path —
// one-shot verbs, Nearest/Closest streams, and the deprecated iterator
// wrappers — now pins a consistent snapshot generation at start and is never
// invalidated by concurrent InsertPoints, DeletePoints, AddObstacles or
// RemoveObstacles.
//
// Deprecated: no API returns this error anymore. It remains exported only so
// code written against the pre-MVCC contract (errors.Is checks on stream
// errors) keeps compiling; such checks can simply be deleted.
var ErrConcurrentUpdate = errors.New("obstacles: concurrent update invalidated this query")

// Database holds one obstacle set and any number of named point datasets,
// all indexed by R*-trees over simulated disk pages with LRU buffers. It is
// safe for concurrent use: any number of goroutines may query it in
// parallel (sharing the warm page buffers and the visibility-graph cache),
// and AddDataset may run alongside queries on other datasets. Every query
// verb takes a context whose cancellation aborts the query promptly with
// ctx.Err(), and accepts functional options (WithStats, WithLimit,
// WithFilter, WithPairFilter).
//
// Points and obstacles can be mutated in place (InsertPoints, DeletePoints,
// AddObstacles, RemoveObstacles). The database is multi-versioned: mutators
// copy-on-write only the pages they touch and publish a new immutable
// generation atomically, so readers never block writers and writers never
// wait for readers to drain. Every read — a one-shot verb, a Nearest/Closest
// stream, or an explicit Snapshot handle — pins the generation current when
// it starts and answers from it alone, entirely before or entirely after any
// update, for as long as it runs.
type Database struct {
	opts    Options
	engine  *core.Engine
	obstSet *core.ObstacleSet

	mu       sync.RWMutex
	datasets map[string]*core.PointSet

	// updateMu serializes mutators (and the checkpointer, and deferred page
	// frees) against each other. Queries do not take it: the read path pins
	// an immutable published version instead.
	updateMu sync.RWMutex
	// gen counts committed mutations; each published version carries the
	// value at its publish.
	gen atomic.Uint64

	// versions is the multi-version read head: the current published
	// version, the refcounts of pinned generations, and COW pages whose
	// free is deferred until the snapshots that can still read them close.
	versions versionTable

	// store is the durable backend (nil for in-memory databases built by
	// NewDatabase). When set, every mutator commits through the write-ahead
	// log before returning; see Open.
	store *durableStore

	// tel is the database's telemetry (see metrics.go), created with the
	// handle; debug is the HTTP debug listener, nil unless
	// Options.DebugAddr is set.
	tel   *dbMetrics
	debug *debugServer

	// Recovery-supervisor lifecycle (nil channels unless Options.AutoRecover
	// started one); see recovery.go.
	recoverStop     chan struct{}
	recoverDone     chan struct{}
	recoverStopOnce sync.Once
}

// dbVersion is one immutable published generation: sealed views of the
// obstacle set and every dataset, sharing all untouched pages with newer
// generations. Readers holding a pin on it answer from these views alone.
type dbVersion struct {
	gen      uint64
	obst     *core.ObstacleSet
	datasets map[string]*core.PointSet
}

// dataset resolves a sealed dataset view by name.
func (v *dbVersion) dataset(name string) (*core.PointSet, error) {
	ps, ok := v.datasets[name]
	if !ok {
		return nil, fmt.Errorf("obstacles: unknown dataset %q", name)
	}
	return ps, nil
}

// pendingFree is a batch of COW-retired pages that cannot be freed yet: a
// reader pinned to a generation older than limit may still walk them. They
// free once every pin older than limit releases.
type pendingFree struct {
	limit uint64
	pf    *pagefile.File
	ids   []pagefile.PageID
}

// versionTable is the refcounted generation table behind the read head.
type versionTable struct {
	mu      sync.Mutex
	current *dbVersion
	// pins counts open readers per pinned generation.
	pins map[uint64]int
	// snapshots counts open explicit Snapshot handles (a subset of the
	// pins), reported by the obstacles_snapshots_open gauge.
	snapshots int
	// pending holds retired pages awaiting the release of older pins.
	pending []pendingFree
}

// minPinLocked returns the oldest pinned generation (max uint64 when no
// reader is pinned). Caller holds vt.mu.
func (vt *versionTable) minPinLocked() uint64 {
	min := ^uint64(0)
	for g := range vt.pins {
		if g < min {
			min = g
		}
	}
	return min
}

// takeFreeableLocked removes and returns every pending batch no live pin can
// still read. Caller holds vt.mu.
func (vt *versionTable) takeFreeableLocked() []pendingFree {
	minPin := vt.minPinLocked()
	var frees []pendingFree
	kept := vt.pending[:0]
	for _, p := range vt.pending {
		if p.limit <= minPin {
			frees = append(frees, p)
		} else {
			kept = append(kept, p)
		}
	}
	for i := len(kept); i < len(vt.pending); i++ {
		vt.pending[i] = pendingFree{}
	}
	vt.pending = kept
	return frees
}

// pinnedPages returns the number of retired pages kept alive for open pins
// (the obstacles_snapshot_pinned_pages gauge).
func (vt *versionTable) pinnedPages() int {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	n := 0
	for _, p := range vt.pending {
		n += len(p.ids)
	}
	return n
}

// pin returns the current version with a pin held on its generation; the
// caller must db.unpin(v) when done reading.
func (db *Database) pin() *dbVersion {
	vt := &db.versions
	vt.mu.Lock()
	v := vt.current
	vt.pins[v.gen]++
	vt.mu.Unlock()
	return v
}

// unpin releases a pin taken by pin. When the release unblocks deferred
// page frees (the last reader of an old generation closing), they are
// processed here, under the update lock, so they ride the next commit.
func (db *Database) unpin(v *dbVersion) {
	vt := &db.versions
	vt.mu.Lock()
	if vt.pins[v.gen]--; vt.pins[v.gen] <= 0 {
		delete(vt.pins, v.gen)
	}
	frees := vt.takeFreeableLocked()
	vt.mu.Unlock()
	if len(frees) == 0 {
		return
	}
	db.updateMu.Lock()
	defer db.updateMu.Unlock()
	freeBatches(frees)
}

func freeBatches(frees []pendingFree) {
	for _, p := range frees {
		for _, id := range p.ids {
			// Free only fails on ids the file never allocated; retired ids
			// came straight from the tree's allocator.
			_ = p.pf.Free(id)
		}
	}
}

// currentVersion returns the published read head without pinning it — for
// pure in-memory reads (counts, names) that touch no tree pages.
func (db *Database) currentVersion() *dbVersion {
	vt := &db.versions
	vt.mu.Lock()
	defer vt.mu.Unlock()
	return vt.current
}

// initVersions switches every live set to copy-on-write mutation and
// publishes the initial version. Called once construction (or durable
// attach) completes, before the database is handed out.
func (db *Database) initVersions() {
	db.versions.pins = make(map[uint64]int)
	db.obstSet.EnableCOW()
	for _, ps := range db.datasets {
		ps.EnableCOW()
	}
	db.publishVersion()
}

// publishVersion seals the mutated state into a new immutable version and
// installs it as the read head. COW pages the mutation retired are freed at
// once when no older reader is pinned, and deferred into the version table
// otherwise. Runs under updateMu (deferred by every mutator, after the
// generation bump and before the commit is staged, so frees reach the same
// commit delta as the mutation).
func (db *Database) publishVersion() {
	db.mu.RLock()
	ds := make(map[string]*core.PointSet, len(db.datasets))
	trees := make([]*rtree.Tree, 0, len(db.datasets)+1)
	for name, ps := range db.datasets {
		ds[name] = ps.Seal()
		trees = append(trees, ps.Tree())
	}
	db.mu.RUnlock()
	trees = append(trees, db.obstSet.Tree())
	v := &dbVersion{gen: db.gen.Load(), obst: db.obstSet.Seal(), datasets: ds}
	vt := &db.versions
	vt.mu.Lock()
	vt.current = v
	for _, t := range trees {
		ids := t.TakeRetired()
		if len(ids) > 0 {
			vt.pending = append(vt.pending, pendingFree{limit: v.gen, pf: t.PageFile(), ids: ids})
		}
	}
	frees := vt.takeFreeableLocked()
	vt.mu.Unlock()
	freeBatches(frees) // already under updateMu
}

// ErrInvalidPolygon is the typed error wrapped by AddObstacles and
// NewDatabase when an obstacle polygon is structurally unusable: fewer than
// three vertices (the zero Polygon, or one bypassing NewPolygon) or a
// degenerate area (collinear vertices), which would index an invisible
// sliver that can never block a segment yet still costs every query.
var ErrInvalidPolygon = errors.New("obstacles: invalid obstacle polygon")

// validatePolygons rejects degenerate obstacles with a typed error instead
// of silently indexing them.
func validatePolygons(polys []Polygon) error {
	for i, pg := range polys {
		if pg.NumVertices() < 3 {
			return fmt.Errorf("%w: obstacle %d has %d vertices; build it with NewPolygon", ErrInvalidPolygon, i, pg.NumVertices())
		}
		if pg.Area() <= geom.Eps {
			return fmt.Errorf("%w: obstacle %d has degenerate area %g", ErrInvalidPolygon, i, pg.Area())
		}
	}
	return nil
}

// NewDatabase builds a database over polygonal obstacles. Obstacles should
// not overlap each other's interiors (touching is fine); see
// Options.NaiveVisibility for heavily overlapping data. Out-of-range option
// values are rejected with an error (zero values select the defaults), as
// are degenerate polygons (ErrInvalidPolygon).
func NewDatabase(polys []Polygon, opts Options) (*Database, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := validatePolygons(polys); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	obstSet, err := core.NewObstacleSet(opts.treeOptions(), polys, !opts.InsertLoad)
	if err != nil {
		return nil, fmt.Errorf("obstacles: building obstacle index: %w", err)
	}
	sizeBuffer(obstSet.Tree(), opts.BufferFraction)
	eng := core.NewEngine(obstSet, core.EngineOptions{UseSweep: !opts.NaiveVisibility})
	if opts.GraphCacheSize > 0 {
		eng.EnableGraphCache(opts.GraphCacheSize)
	}
	db := &Database{
		opts:     opts,
		engine:   eng,
		obstSet:  obstSet,
		datasets: make(map[string]*core.PointSet),
	}
	db.initVersions()
	db.tel = newDBMetrics(db)
	if err := db.startDebug(); err != nil {
		return nil, err
	}
	return db, nil
}

// NewDatabaseFromRects builds a database with rectangular obstacles, the
// shape of the paper's street-MBR evaluation dataset.
func NewDatabaseFromRects(rects []Rect, opts Options) (*Database, error) {
	polys := make([]Polygon, len(rects))
	for i, r := range rects {
		if r.IsEmpty() {
			return nil, fmt.Errorf("obstacles: obstacle %d is empty", i)
		}
		polys[i] = RectPolygon(r)
	}
	return NewDatabase(polys, opts)
}

func sizeBuffer(t *rtree.Tree, fraction float64) {
	pages := int(math.Ceil(float64(t.PageFile().NumPages()) * fraction))
	if pages < 1 {
		pages = 1
	}
	// SetBufferPages only errors on write-back failures, impossible while
	// shrinking a read-only tree's clean buffer.
	_ = t.PageFile().SetBufferPages(pages)
}

// treeOptions returns the R-tree configuration for this database's trees;
// durable databases route all trees through the shared transactional
// storage so every node page lives in the one data file.
func (db *Database) treeOptions() rtree.Options {
	o := db.opts.treeOptions()
	if db.store != nil {
		o.Storage = db.store.tx
	}
	return o
}

// AddDataset indexes a named point dataset. Entity i gets ID int64(i);
// later InsertPoints/DeletePoints calls may make the id space sparse and
// reuse freed ids. For an in-memory database the dataset is built outside
// any lock and becomes visible to queries atomically when the new version
// publishes; queries proceed concurrently throughout. A durable database
// (Open) instead serializes the build with other mutators, so the pages it
// allocates commit atomically with the catalog record that names them.
func (db *Database) AddDataset(name string, pts []Point) error {
	return db.AddDatasetContext(context.Background(), name, pts)
}

// AddDatasetContext is AddDataset with a caller context. The context is
// consulted for trace propagation only (a span carried by ctx records the
// build and commit stages as children); the build and commit themselves run
// to completion once started.
func (db *Database) AddDatasetContext(ctx context.Context, name string, pts []Point) (err error) {
	defer db.countMutation(OpAddDataset, &err)
	db.mu.RLock()
	_, exists := db.datasets[name]
	db.mu.RUnlock()
	if exists {
		return fmt.Errorf("obstacles: dataset %q already exists", name)
	}
	if db.store != nil {
		return db.addDatasetDurable(telemetry.SpanFromContext(ctx), name, pts)
	}
	ps, err := core.NewPointSet(db.treeOptions(), pts, !db.opts.InsertLoad)
	if err != nil {
		return fmt.Errorf("obstacles: building dataset %q: %w", name, err)
	}
	sizeBuffer(ps.Tree(), db.opts.BufferFraction)
	db.updateMu.Lock()
	defer db.updateMu.Unlock()
	db.mu.Lock()
	if _, exists := db.datasets[name]; exists {
		db.mu.Unlock()
		return fmt.Errorf("obstacles: dataset %q already exists", name)
	}
	ps.EnableCOW()
	db.datasets[name] = ps
	db.mu.Unlock()
	db.gen.Add(1)
	db.publishVersion()
	return nil
}

// addDatasetDurable builds and commits a dataset under the update lock.
// The duplicate re-check happens before the build (adds serialize here, so
// no racing build can slip past it), and a failed build frees every page
// it allocated — otherwise the orphaned tree pages would be committed into
// the file with nothing referencing them, a permanent leak. The commit is
// staged under the lock and awaited after releasing it, like every other
// mutator, so a dataset build can share its fsync with concurrent commits.
func (db *Database) addDatasetDurable(sp *telemetry.Span, name string, pts []Point) (err error) {
	db.updateMu.Lock()
	var tk *commitTicket
	defer db.awaitCommit(&err, &tk)
	defer db.updateMu.Unlock()
	if err = db.degradedCheckLocked(); err != nil {
		return err
	}
	db.mu.RLock()
	_, exists := db.datasets[name]
	db.mu.RUnlock()
	if exists {
		return fmt.Errorf("obstacles: dataset %q already exists", name)
	}
	ps, err := core.NewPointSet(db.treeOptions(), pts, !db.opts.InsertLoad)
	if err != nil {
		// Every page dirtied since the last stage belongs to this failed
		// build (mutators stage before releasing updateMu), so freeing the
		// dirty set rolls the allocation back. The alloc/free churn nets
		// out through the next commit's delta ops.
		for _, w := range db.store.tx.CaptureDirty() {
			_ = db.store.tx.Free(w.ID)
		}
		return fmt.Errorf("obstacles: building dataset %q: %w", name, err)
	}
	sizeBuffer(ps.Tree(), db.opts.BufferFraction)
	db.mu.Lock()
	ps.EnableCOW()
	db.datasets[name] = ps
	db.mu.Unlock()
	db.noteDatasetDirty(name)
	db.gen.Add(1)
	db.publishVersion()
	db.stageCommit(&err, &tk, false, sp)
	return err
}

// Datasets returns the names of the datasets added so far, sorted.
func (db *Database) Datasets() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.datasets))
	for n := range db.datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NumObstacles returns the live obstacle count.
func (db *Database) NumObstacles() int {
	return db.currentVersion().obst.Len()
}

// HasDataset reports whether a dataset with the given name exists.
func (db *Database) HasDataset(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.datasets[name]
	return ok
}

// DatasetLen returns the number of entities in a dataset. Unlike the old
// API, an unknown name is an error rather than a silent zero.
func (db *Database) DatasetLen(name string) (int, error) {
	ps, err := db.currentVersion().dataset(name)
	if err != nil {
		return 0, err
	}
	return ps.Len(), nil
}

func (db *Database) dataset(name string) (*core.PointSet, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ps, ok := db.datasets[name]
	if !ok {
		return nil, fmt.Errorf("obstacles: unknown dataset %q", name)
	}
	return ps, nil
}

// InsertPoints adds entities to an existing dataset and returns their
// assigned ids. Ids freed by DeletePoints are reused before the id space
// grows, so sustained churn keeps ids (and the page file) bounded. The
// insert copies only the tree pages it touches and publishes a new version
// atomically: in-flight queries and open streams keep answering from the
// generation they pinned, unaffected. Point changes never invalidate cached
// visibility graphs: graphs hold obstacle geometry only. On a durable
// database the insert reaches the write-ahead log (fsynced) before
// returning; concurrent mutators stage their commits while holding the
// update lock but share fsyncs after releasing it, so N parallel inserts
// cost far fewer than N fsyncs (see Open).
func (db *Database) InsertPoints(name string, pts ...Point) ([]int64, error) {
	return db.InsertPointsContext(context.Background(), name, pts...)
}

// InsertPointsContext is InsertPoints with a caller context, consulted for
// trace propagation only: a span carried by ctx records the commit stages
// (stage, park, and — when this mutator leads its fsync batch — wal-append
// and fsync) as children.
func (db *Database) InsertPointsContext(ctx context.Context, name string, pts ...Point) (ids []int64, err error) {
	ps, err := db.dataset(name)
	if err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, nil
	}
	db.updateMu.Lock()
	var tk *commitTicket
	defer db.countMutation(OpInsertPoints, &err) // declared first: counts after the commit resolves
	defer db.awaitCommit(&err, &tk)              // runs after the unlock: parks on the shared fsync
	defer db.updateMu.Unlock()
	if err = db.degradedCheckLocked(); err != nil {
		return nil, err
	}
	// Re-resolve under the lock: in-place recovery swaps the dataset map, and
	// a write into a pre-swap tree would land on a detached overlay and be
	// silently lost.
	if ps, err = db.dataset(name); err != nil {
		return nil, err
	}
	defer db.stageCommit(&err, &tk, false, telemetry.SpanFromContext(ctx))
	defer db.publishVersion()
	defer db.gen.Add(1)
	ps.BeginEpoch()
	db.noteDatasetDirty(name)
	ids, err = ps.Insert(pts)
	if err != nil {
		return ids, err
	}
	sizeBuffer(ps.Tree(), db.opts.BufferFraction)
	return ids, nil
}

// DeletePoints removes entities from a dataset by id (the ids returned by
// AddDataset ordering or InsertPoints). All ids are validated before any is
// removed, so an unknown id fails the whole call with no partial effect.
// Deleted ids may be reused by later inserts.
func (db *Database) DeletePoints(name string, ids ...int64) error {
	return db.DeletePointsContext(context.Background(), name, ids...)
}

// DeletePointsContext is DeletePoints with a caller context, consulted for
// trace propagation only (see InsertPointsContext).
func (db *Database) DeletePointsContext(ctx context.Context, name string, ids ...int64) (err error) {
	ps, err := db.dataset(name)
	if err != nil {
		return err
	}
	if len(ids) == 0 {
		return nil
	}
	db.updateMu.Lock()
	var tk *commitTicket
	defer db.countMutation(OpDeletePoints, &err)
	defer db.awaitCommit(&err, &tk)
	defer db.updateMu.Unlock()
	if err = db.degradedCheckLocked(); err != nil {
		return err
	}
	// Re-resolve under the lock (see InsertPointsContext).
	if ps, err = db.dataset(name); err != nil {
		return err
	}
	seen := make(map[int64]bool, len(ids))
	for _, id := range ids {
		if !ps.Alive(id) {
			return fmt.Errorf("obstacles: dataset %q has no entity %d", name, id)
		}
		if seen[id] {
			return fmt.Errorf("obstacles: duplicate entity id %d in delete", id)
		}
		seen[id] = true
	}
	defer db.stageCommit(&err, &tk, false, telemetry.SpanFromContext(ctx))
	defer db.publishVersion()
	defer db.gen.Add(1)
	ps.BeginEpoch()
	db.noteDatasetDirty(name)
	for _, id := range ids {
		if err := ps.Delete(id); err != nil {
			return err
		}
	}
	sizeBuffer(ps.Tree(), db.opts.BufferFraction)
	return nil
}

// AddObstacles indexes new obstacles and returns their assigned ids (ids
// freed by RemoveObstacles are reused). Degenerate polygons — fewer than
// three vertices or a collinear (zero-area) outline — are rejected up
// front with ErrInvalidPolygon and no partial effect. The update never
// waits for queries: it copies only the pages it touches, bounds the
// validity of exactly the cached visibility graphs whose coverage disk
// intersects a new obstacle's MBR to the old epoch (in-flight queries
// pinned there keep using them; new queries rebuild), and publishes the
// new obstacle set atomically.
func (db *Database) AddObstacles(polys ...Polygon) ([]int64, error) {
	return db.AddObstaclesContext(context.Background(), polys...)
}

// AddObstaclesContext is AddObstacles with a caller context, consulted for
// trace propagation only (see InsertPointsContext).
func (db *Database) AddObstaclesContext(ctx context.Context, polys ...Polygon) (ids []int64, err error) {
	if err := validatePolygons(polys); err != nil {
		return nil, err
	}
	if len(polys) == 0 {
		return nil, nil
	}
	db.updateMu.Lock()
	var tk *commitTicket
	defer db.countMutation(OpAddObstacles, &err)
	defer db.awaitCommit(&err, &tk)
	defer db.updateMu.Unlock()
	if err = db.degradedCheckLocked(); err != nil {
		return nil, err
	}
	defer db.stageCommit(&err, &tk, true, telemetry.SpanFromContext(ctx))
	defer db.publishVersion()
	defer db.gen.Add(1)
	db.obstSet.BeginEpoch()
	ids, err = db.obstSet.Add(polys)
	for _, id := range ids {
		pg := db.obstSet.Polygon(id)
		db.engine.InvalidateObstacleRegion(pg.Bounds())
		db.noteObstacleAdd(id, pg.Vertices())
	}
	if err != nil {
		return ids, err
	}
	sizeBuffer(db.obstSet.Tree(), db.opts.BufferFraction)
	return ids, nil
}

// AddObstacleRects is AddObstacles for rectangular obstacles (the paper's
// street-MBR shape).
func (db *Database) AddObstacleRects(rects ...Rect) ([]int64, error) {
	return db.AddObstacleRectsContext(context.Background(), rects...)
}

// AddObstacleRectsContext is AddObstacleRects with a caller context,
// consulted for trace propagation only (see InsertPointsContext).
func (db *Database) AddObstacleRectsContext(ctx context.Context, rects ...Rect) ([]int64, error) {
	polys := make([]Polygon, len(rects))
	for i, r := range rects {
		if r.IsEmpty() {
			return nil, fmt.Errorf("obstacles: obstacle rect %d is empty", i)
		}
		polys[i] = RectPolygon(r)
	}
	return db.AddObstaclesContext(ctx, polys...)
}

// RemoveObstacles deletes obstacles by id (initial obstacles are numbered in
// NewDatabase order; AddObstacles returns the ids it assigned). All ids are
// validated before any is removed. Cached visibility graphs covering a
// removed obstacle's MBR are epoch-bounded (stale for new queries, still
// valid for readers pinned to older generations); the rest survive.
func (db *Database) RemoveObstacles(ids ...int64) error {
	return db.RemoveObstaclesContext(context.Background(), ids...)
}

// RemoveObstaclesContext is RemoveObstacles with a caller context, consulted
// for trace propagation only (see InsertPointsContext).
func (db *Database) RemoveObstaclesContext(ctx context.Context, ids ...int64) (err error) {
	if len(ids) == 0 {
		return nil
	}
	db.updateMu.Lock()
	var tk *commitTicket
	defer db.countMutation(OpRemoveObstacles, &err)
	defer db.awaitCommit(&err, &tk)
	defer db.updateMu.Unlock()
	if err = db.degradedCheckLocked(); err != nil {
		return err
	}
	seen := make(map[int64]bool, len(ids))
	for _, id := range ids {
		if !db.obstSet.Alive(id) {
			return fmt.Errorf("obstacles: no obstacle with id %d", id)
		}
		if seen[id] {
			return fmt.Errorf("obstacles: duplicate obstacle id %d in remove", id)
		}
		seen[id] = true
	}
	defer db.stageCommit(&err, &tk, true, telemetry.SpanFromContext(ctx))
	defer db.publishVersion()
	defer db.gen.Add(1)
	db.obstSet.BeginEpoch()
	for _, id := range ids {
		mbr, err := db.obstSet.Remove(id)
		if err != nil {
			return err
		}
		db.engine.InvalidateObstacleRegion(mbr)
		db.noteObstacleRemove(id)
	}
	sizeBuffer(db.obstSet.Tree(), db.opts.BufferFraction)
	return nil
}

// CacheStats reports visibility-graph cache traffic: hits and misses on
// acquire, LRU evictions, and entries invalidated by obstacle updates. All
// zero when the cache is disabled (Options.GraphCacheSize < 0).
type CacheStats = core.CacheStats

// GraphCacheStats returns the engine's graph-cache counters. Invalidations
// counts cached graphs whose validity an obstacle update epoch-bounded
// because it touched their coverage disk (they keep serving readers pinned
// to older generations until the LRU ages them out) — the observable cost
// of AddObstacles/RemoveObstacles beyond the R-tree writes.
func (db *Database) GraphCacheStats() CacheStats {
	return db.engine.GraphCacheStats()
}

// Range returns all entities of the dataset within obstructed distance
// radius of q, sorted by distance (the OR algorithm of the paper). Like
// every query verb, it pins the current generation for its whole call, so
// concurrent mutations neither block it nor change its answer.
func (db *Database) Range(ctx context.Context, dataset string, q Point, radius float64, opts ...QueryOption) ([]Neighbor, error) {
	v := db.pin()
	defer db.unpin(v)
	return db.rangeAt(v, ctx, dataset, q, radius, opts...)
}

func (db *Database) rangeAt(v *dbVersion, ctx context.Context, dataset string, q Point, radius float64, opts ...QueryOption) ([]Neighbor, error) {
	cfg := applyOptions(opts)
	start := time.Now()
	ps, err := v.dataset(dataset)
	if err != nil {
		return nil, err
	}
	sess := db.newSessionAt(ctx, v, VerbRange)
	res, st, err := sess.Range(ps, q, radius)
	db.record(VerbRange, &cfg, sess, st, start, err)
	if err != nil {
		return nil, err
	}
	return cfg.applyNeighborOpts(toNeighbors(res)), nil
}

// NearestNeighbors returns the k entities of the dataset with the smallest
// obstructed distance from q, sorted by it (the ONN algorithm). With
// WithFilter, the k closest entities satisfying the predicate are found by
// consuming the incremental stream instead.
func (db *Database) NearestNeighbors(ctx context.Context, dataset string, q Point, k int, opts ...QueryOption) ([]Neighbor, error) {
	v := db.pin()
	defer db.unpin(v)
	return db.nearestNeighborsAt(v, ctx, dataset, q, k, opts...)
}

func (db *Database) nearestNeighborsAt(v *dbVersion, ctx context.Context, dataset string, q Point, k int, opts ...QueryOption) ([]Neighbor, error) {
	cfg := applyOptions(opts)
	start := time.Now()
	ps, err := v.dataset(dataset)
	if err != nil {
		return nil, err
	}
	if cfg.limit >= 0 && cfg.limit < k {
		k = cfg.limit
	}
	sess := db.newSessionAt(ctx, v, VerbNearestNeighbors)
	if cfg.filter == nil {
		res, st, err := sess.NearestNeighbors(ps, q, k)
		db.record(VerbNearestNeighbors, &cfg, sess, st, start, err)
		if err != nil {
			return nil, err
		}
		return toNeighbors(res), nil
	}
	// Filtered kNN: the rank of the k-th qualifying entity is unknown, so
	// stream the incremental ONN and keep the first k that qualify. A
	// blocked query point returns no neighbors, exactly like the
	// unfiltered path (the stream would otherwise drain every entity at
	// distance Unreachable).
	if inside, err := sess.InsideObstacle(q); err != nil {
		return nil, err
	} else if inside {
		db.record(VerbNearestNeighbors, &cfg, sess, core.Stats{Candidates: 0}, start, nil)
		return nil, nil
	}
	it := sess.NearestIterator(ps, q)
	var out []Neighbor
	pulled := 0
	for len(out) < k {
		r, ok := it.Next()
		if !ok {
			break
		}
		pulled++
		nb := Neighbor{ID: r.ID, Point: r.Pt, Distance: r.Dist}
		if cfg.filter(nb) {
			out = append(out, nb)
		}
	}
	st := it.Stats()
	st.Results = len(out)
	// False hits are candidates the obstructed metric eliminated (retrieved
	// in Euclidean order but never surfaced in obstructed order); entities
	// the caller's filter rejected are true hits and must not count.
	st.FalseHits = st.Candidates - pulled
	db.record(VerbNearestNeighbors, &cfg, sess, st, start, it.Err())
	if err := it.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// DistanceJoin returns all pairs (s, t) from the two datasets within
// obstructed distance dist of each other, sorted by distance (the ODJ
// algorithm).
func (db *Database) DistanceJoin(ctx context.Context, dataset1, dataset2 string, dist float64, opts ...QueryOption) ([]Pair, error) {
	v := db.pin()
	defer db.unpin(v)
	return db.distanceJoinAt(v, ctx, dataset1, dataset2, dist, opts...)
}

func (db *Database) distanceJoinAt(v *dbVersion, ctx context.Context, dataset1, dataset2 string, dist float64, opts ...QueryOption) ([]Pair, error) {
	cfg := applyOptions(opts)
	start := time.Now()
	s, err := v.dataset(dataset1)
	if err != nil {
		return nil, err
	}
	t, err := v.dataset(dataset2)
	if err != nil {
		return nil, err
	}
	sess := db.newSessionAt(ctx, v, VerbDistanceJoin)
	res, st, err := sess.DistanceJoin(s, t, dist)
	db.record(VerbDistanceJoin, &cfg, sess, st, start, err)
	if err != nil {
		return nil, err
	}
	return cfg.applyPairOpts(toPairs(res)), nil
}

// ClosestPairs returns the k pairs from the two datasets with the smallest
// obstructed distance, sorted by it (the OCP algorithm). With
// WithPairFilter, the k closest qualifying pairs are found by consuming the
// incremental iOCP stream instead.
func (db *Database) ClosestPairs(ctx context.Context, dataset1, dataset2 string, k int, opts ...QueryOption) ([]Pair, error) {
	v := db.pin()
	defer db.unpin(v)
	return db.closestPairsAt(v, ctx, dataset1, dataset2, k, opts...)
}

func (db *Database) closestPairsAt(v *dbVersion, ctx context.Context, dataset1, dataset2 string, k int, opts ...QueryOption) ([]Pair, error) {
	cfg := applyOptions(opts)
	start := time.Now()
	s, err := v.dataset(dataset1)
	if err != nil {
		return nil, err
	}
	t, err := v.dataset(dataset2)
	if err != nil {
		return nil, err
	}
	if cfg.limit >= 0 && cfg.limit < k {
		k = cfg.limit
	}
	sess := db.newSessionAt(ctx, v, VerbClosestPairs)
	if cfg.pairFilter == nil {
		res, st, err := sess.ClosestPairs(s, t, k)
		db.record(VerbClosestPairs, &cfg, sess, st, start, err)
		if err != nil {
			return nil, err
		}
		return toPairs(res), nil
	}
	it, err := sess.ClosestPairIterator(s, t)
	if err != nil {
		return nil, err
	}
	var out []Pair
	pulled := 0
	for len(out) < k {
		jp, ok := it.Next()
		if !ok {
			break
		}
		pulled++
		p := Pair{ID1: jp.SID, ID2: jp.TID, Distance: jp.Dist}
		if cfg.pairFilter(p) {
			out = append(out, p)
		}
	}
	st := it.Stats()
	st.Results = len(out)
	// As in the filtered kNN path: filter-rejected pairs are true hits, not
	// false hits; only candidates eliminated by obstructed distance count.
	st.FalseHits = st.Candidates - pulled
	db.record(VerbClosestPairs, &cfg, sess, st, start, it.Err())
	if err := it.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ObstructedDistance returns the length of the shortest obstacle-avoiding
// path from a to b (Unreachable when none exists).
func (db *Database) ObstructedDistance(ctx context.Context, a, b Point, opts ...QueryOption) (float64, error) {
	v := db.pin()
	defer db.unpin(v)
	return db.obstructedDistanceAt(v, ctx, a, b, opts...)
}

func (db *Database) obstructedDistanceAt(v *dbVersion, ctx context.Context, a, b Point, opts ...QueryOption) (float64, error) {
	cfg := applyOptions(opts)
	start := time.Now()
	sess := db.newSessionAt(ctx, v, VerbObstructedDistance)
	d, st, err := sess.ObstructedDistance(a, b)
	db.record(VerbObstructedDistance, &cfg, sess, st, start, err)
	return d, err
}

// ObstructedPath returns a shortest obstacle-avoiding route from a to b as
// a sequence of waypoints (a first, b last, bending only at obstacle
// corners) and its total length. The path is nil and the length Unreachable
// when no route exists.
func (db *Database) ObstructedPath(ctx context.Context, a, b Point, opts ...QueryOption) ([]Point, float64, error) {
	v := db.pin()
	defer db.unpin(v)
	return db.obstructedPathAt(v, ctx, a, b, opts...)
}

func (db *Database) obstructedPathAt(v *dbVersion, ctx context.Context, a, b Point, opts ...QueryOption) ([]Point, float64, error) {
	cfg := applyOptions(opts)
	start := time.Now()
	sess := db.newSessionAt(ctx, v, VerbObstructedPath)
	path, d, st, err := sess.ObstructedPath(a, b)
	db.record(VerbObstructedPath, &cfg, sess, st, start, err)
	return path, d, err
}

// InsideObstacle reports whether p lies strictly inside an obstacle. Such
// points can reach nothing: queries from them return no results and their
// distances are Unreachable.
func (db *Database) InsideObstacle(p Point) (bool, error) {
	v := db.pin()
	defer db.unpin(v)
	return db.insideObstacleAt(v, p)
}

func (db *Database) insideObstacleAt(v *dbVersion, p Point) (bool, error) {
	sess := db.engine.NewSessionAt(context.Background(), v.obst)
	return sess.InsideObstacle(p)
}

// ObstacleTreeStats returns the I/O counters of the obstacle R-tree
// (process-global; see WithStats for per-query counters).
func (db *Database) ObstacleTreeStats() TreeStats {
	db.mu.RLock()
	o := db.obstSet
	db.mu.RUnlock()
	return treeStats(o.Tree())
}

// DatasetTreeStats returns the I/O counters of a dataset's R-tree
// (process-global; see WithStats for per-query counters).
func (db *Database) DatasetTreeStats(name string) (TreeStats, error) {
	ps, err := db.dataset(name)
	if err != nil {
		return TreeStats{}, err
	}
	return treeStats(ps.Tree()), nil
}

// ResetStats zeroes all global I/O counters (buffers stay warm). Counters
// zeroed while queries are in flight lose those queries' traffic; per-query
// measurement should use WithStats instead.
func (db *Database) ResetStats() {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.obstSet.Tree().PageFile().ResetStats()
	for _, ps := range db.datasets {
		ps.Tree().PageFile().ResetStats()
	}
}

func treeStats(t *rtree.Tree) TreeStats {
	st := t.PageFile().Stats()
	return TreeStats{
		PageAccesses: st.PhysicalReads,
		LogicalReads: st.LogicalReads,
		BufferHits:   st.BufferHits,
		Pages:        t.PageFile().NumPages(),
	}
}

func toNeighbors(rs []core.Result) []Neighbor {
	out := make([]Neighbor, len(rs))
	for i, r := range rs {
		out[i] = Neighbor{ID: r.ID, Point: r.Pt, Distance: r.Dist}
	}
	return out
}

func toPairs(ps []core.JoinPair) []Pair {
	out := make([]Pair, len(ps))
	for i, p := range ps {
		out[i] = Pair{ID1: p.SID, ID2: p.TID, Distance: p.Dist}
	}
	return out
}
